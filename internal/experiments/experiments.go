// Package experiments regenerates every figure in the paper's evaluation
// (§IV). Each Fig* function runs the corresponding workload on the
// simulated testbed and returns the same data series the paper plots;
// cmd/enviromic-figures renders them as text and bench_test.go wraps them
// as benchmarks. Functions take explicit options so the benchmarks can
// run reduced-scale variants; Default*Opts reproduce the paper's
// parameters.
package experiments

import (
	"math"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/mote"
	"enviromic/internal/obs"
	"enviromic/internal/sim"
	"enviromic/internal/storage"
	"enviromic/internal/task"
	"enviromic/internal/telemetry"
	"enviromic/internal/workload"
)

// ---------------------------------------------------------------------
// Fig 3 — measured ADC sampling interval with and without radio activity.
// ---------------------------------------------------------------------

// Fig3Result holds per-sample intervals (in jiffies) for the three
// scenarios of Fig 3.
type Fig3Result struct {
	// Quiet, Sending, Receiving are observed sampling intervals in
	// jiffies, one per consecutive sample pair.
	Quiet, Sending, Receiving []float64
}

// Fig3 reproduces the sampling-interval measurement: a mote samples at a
// 10-jiffy nominal interval while (a) idle, (b) transmitting packets,
// (c) receiving packets. samples is the trace length (the paper plots
// 150).
func Fig3(seed int64, samples int) Fig3Result {
	run := func(activity func(s *sim.Scheduler, sp *mote.Sampler)) []float64 {
		s := sim.NewScheduler(seed)
		sp := mote.NewSampler(s)
		var fires []sim.Time
		sp.Start(func(at sim.Time) {
			fires = append(fires, at)
			if len(fires) > samples {
				sp.Stop()
			}
		})
		if activity != nil {
			activity(s, sp)
		}
		s.Run(sim.At(time.Duration(samples*3) * 10 * sim.Jiffy))
		var ivs []float64
		for i := 1; i < len(fires) && i <= samples; i++ {
			ivs = append(ivs, float64(fires[i].Sub(fires[i-1]))/float64(sim.Jiffy))
		}
		return ivs
	}
	// A packet every ~25 jiffies keeps the radio stack busy roughly half
	// the time, matching the sustained TX/RX traces of Fig 3(b)/(c).
	packetBurst := func(s *sim.Scheduler, sp *mote.Sampler) {
		sim.NewTicker(s, 25*sim.Jiffy, "fig3.pkt", func() {
			sp.RadioBusy(14 * sim.Jiffy)
		})
	}
	return Fig3Result{
		Quiet:     run(nil),
		Sending:   run(packetBurst),
		Receiving: run(packetBurst),
	}
}

// ---------------------------------------------------------------------
// Fig 6 — recording miss ratio vs expected task assignment delay Dta.
// ---------------------------------------------------------------------

// Fig6Opts parameterizes the Dta/Trc sweep.
type Fig6Opts struct {
	Seed    int64
	Runs    int             // repetitions per parameter combination (paper: 15)
	DtaMS   []int           // swept Dta values in ms (paper: 10..130 step 20)
	TrcList []time.Duration // task periods (paper: 0.5, 1.0, 1.5 s)
	// Parallel is the worker count for fanning the trc×Dta×runs sweep
	// across goroutines; <= 1 runs serially. Results are bit-identical
	// either way (each run owns its scheduler and RNG).
	Parallel int
}

// DefaultFig6Opts mirrors the paper.
func DefaultFig6Opts() Fig6Opts {
	return Fig6Opts{
		Seed:    1,
		Runs:    15,
		DtaMS:   []int{10, 30, 50, 70, 90, 110, 130},
		TrcList: []time.Duration{500 * time.Millisecond, time.Second, 1500 * time.Millisecond},
	}
}

// Fig6Result holds mean miss ratios and 90% confidence half-widths,
// indexed [trc][dta].
type Fig6Result struct {
	Opts Fig6Opts
	Mean [][]float64
	CI90 [][]float64
}

// Fig6 sweeps Dta and Trc over the mobile-target crossing on the 8×6
// grid, 15 runs per point, reporting the recording miss ratio. Every
// (trc, dta, run) triple is an independent trial, so the whole sweep fans
// out across opts.Parallel workers; aggregation walks the results in the
// serial loop's order, keeping the output bit-identical.
func Fig6(opts Fig6Opts) Fig6Result {
	grid := workload.IndoorGrid()
	runs := opts.Runs
	jobs := len(opts.TrcList) * len(opts.DtaMS) * runs
	miss := Map(opts.Parallel, jobs, func(i int) float64 {
		ti := i / (len(opts.DtaMS) * runs)
		di := i / runs % len(opts.DtaMS)
		r := i % runs
		dtaMS := opts.DtaMS[di]
		return runMobileCrossing(opts.Seed+int64(r)*1000+int64(dtaMS), grid,
			opts.TrcList[ti], time.Duration(dtaMS)*time.Millisecond)
	})
	res := Fig6Result{Opts: opts}
	for ti := range opts.TrcList {
		var means, cis []float64
		for di := range opts.DtaMS {
			base := (ti*len(opts.DtaMS) + di) * runs
			m, ci := meanCI90(miss[base : base+runs])
			means = append(means, m)
			cis = append(cis, ci)
		}
		res.Mean = append(res.Mean, means)
		res.CI90 = append(res.CI90, cis)
	}
	return res
}

// runMobileCrossing executes one Fig 6 trial and returns the miss ratio.
func runMobileCrossing(seed int64, grid geometry.Grid, trc, dta time.Duration) float64 {
	field := acoustics.NewField(1)
	src := workload.AddMobileCrossing(field, grid, 1, sim.At(2*time.Second))
	tcfg := task.DefaultConfig()
	tcfg.Trc = trc
	tcfg.Dta = dta
	if tcfg.ConfirmTimeout > dta {
		tcfg.ConfirmTimeout = dta
	}
	if tcfg.RejectWindow >= trc-dta {
		tcfg.RejectWindow = (trc - dta) / 2
	}
	net := core.NewGridNetwork(core.Config{
		Seed:      seed,
		Mode:      core.ModeCooperative,
		CommRange: 3.5 * grid.Pitch, // comm range > sensing range (§II-A.1)
		LossProb:  0.05,
		Task:      &tcfg,
	}, field, grid)
	net.Run(src.End.Add(3 * time.Second))
	return net.Collector.MissRatioAt(src.End.Add(2 * time.Second))
}

func meanCI90(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	// z=1.645 for the 90% interval (the paper reports 90% CIs).
	return mean, 1.645 * sd / math.Sqrt(n)
}

// ---------------------------------------------------------------------
// Fig 7 — per-node recording timeline for one mobile-target run.
// ---------------------------------------------------------------------

// TaskSpan is one recording task in the Fig 7 timeline.
type TaskSpan struct {
	Node       int
	Start, End sim.Time
}

// Fig7Result is the timeline of one instrumented run.
type Fig7Result struct {
	Tasks                []TaskSpan
	EventStart, EventEnd sim.Time
}

// Fig7 runs one mobile-target crossing with the chosen parameters
// (Trc = 1 s, Dta = 70 ms) and returns every node's recording spans.
func Fig7(seed int64) Fig7Result {
	grid := workload.IndoorGrid()
	field := acoustics.NewField(1)
	src := workload.AddMobileCrossing(field, grid, 1, sim.At(2*time.Second))
	net := core.NewGridNetwork(core.Config{
		Seed:      seed,
		Mode:      core.ModeCooperative,
		CommRange: 3.5 * grid.Pitch,
		LossProb:  0.05,
	}, field, grid)
	net.Run(src.End.Add(3 * time.Second))
	res := Fig7Result{EventStart: src.Start, EventEnd: src.End}
	for _, r := range net.Collector.Recordings {
		res.Tasks = append(res.Tasks, TaskSpan{Node: r.Node, Start: r.Start, End: r.End})
	}
	return res
}

// ---------------------------------------------------------------------
// Fig 8 — stitched recording of a walking speaker vs ground truth.
// ---------------------------------------------------------------------

// Fig8Result carries the reference and EnviroMic-stitched streams.
type Fig8Result struct {
	SampleRate float64
	Reference  []byte
	Stitched   []byte
	// EnvelopeCorr is the envelope correlation between the two streams
	// (the paper argues "visual similarity"; this is the quantitative
	// counterpart).
	EnvelopeCorr float64
	// Coverage is the fraction of the stitched stream carrying data.
	Coverage float64
}

// Fig8 is defined in fig8.go (it needs the trace package).

// ---------------------------------------------------------------------
// Figs 10–14 — the §IV-B indoor storage/balancing evaluation.
// ---------------------------------------------------------------------

// IndoorSetting is one curve of Figs 10–12.
type IndoorSetting struct {
	Name    string
	Mode    core.Mode
	BetaMax float64
}

// IndoorSettings returns the five evaluated settings.
func IndoorSettings() []IndoorSetting {
	return []IndoorSetting{
		{Name: "baseline", Mode: core.ModeIndependent},
		{Name: "coop-only", Mode: core.ModeCooperative},
		{Name: "lb-beta4", Mode: core.ModeFull, BetaMax: 4},
		{Name: "lb-beta3", Mode: core.ModeFull, BetaMax: 3},
		{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2},
	}
}

// IndoorOpts parameterizes the §IV-B runs.
type IndoorOpts struct {
	Seed         int64
	WorkloadSeed int64
	Duration     time.Duration
	// FlashBlocks per mote. The paper's motes had 0.5 MB; the reproduction
	// scales flash so the same saturation dynamics play out: the 8 hot
	// nodes' flash covers ~30% of the total acoustic data, while the whole
	// 48-node network covers ~1.8× of it.
	FlashBlocks int
	// DetectProb models unreliable event detection (§IV-B observes the
	// baseline redundancy at ~0.5 rather than the ideal 0.75 because of
	// it).
	DetectProb float64
	// SamplePoints is how many time samples the curves carry.
	SamplePoints int
	// Shards selects the execution engine for each setting's run
	// (core.Config.Shards: 0/1 serial, >= 2 sharded; results are
	// bit-identical either way).
	Shards int
	// Parallel is the worker count for running the five settings
	// concurrently; <= 1 runs them serially. Each setting's run owns its
	// scheduler and RNG, so the results are identical either way.
	Parallel int
	// Tracer, when non-nil, receives structured protocol events from every
	// node (see internal/obs). Use Parallel <= 1 with a tracer: sinks
	// serialize concurrent emits but the interleaving across settings
	// would not be deterministic.
	Tracer *obs.Tracer
	// Telemetry, when non-nil, receives runtime metrics (see
	// internal/telemetry). Like the tracer it is a pure observer and does
	// not perturb fixed-seed results.
	Telemetry *telemetry.Registry
	// StorageMode selects the storage plane's post-recording behavior for
	// ModeFull settings: the default migration balancer, or erasure-coded
	// dispersal (storage.ModeDisperse). The zero value keeps migration,
	// byte-identical to builds predating the dispersal mode.
	StorageMode storage.Mode
	// Disperse tunes the (n,k) erasure geometry when StorageMode is
	// ModeDisperse; zero values take storage.DefaultDisperseConfig.
	Disperse storage.DisperseConfig
}

// DefaultIndoorOpts mirrors §IV-B: 4400 s, ~220 events, 4 hearers each.
func DefaultIndoorOpts() IndoorOpts {
	return IndoorOpts{
		Seed:         42,
		WorkloadSeed: 7,
		Duration:     4400 * time.Second,
		FlashBlocks:  512,
		DetectProb:   0.6,
		SamplePoints: 11,
	}
}

// BuildIndoor constructs one §IV-B setting's network without running it,
// so callers can install fault scenarios or extra instrumentation before
// simulation starts (see RunIndoorChaos). RunIndoor is BuildIndoor
// followed by a full run.
func BuildIndoor(setting IndoorSetting, opts IndoorOpts) *core.Network {
	grid := workload.IndoorGrid()
	field := acoustics.NewField(1)
	field.DetectProb = opts.DetectProb
	pcfg := workload.DefaultPoisson(grid)
	pcfg.Seed = opts.WorkloadSeed
	pcfg.Until = opts.Duration
	workload.GeneratePoisson(field, grid, pcfg)
	return core.NewGridNetwork(core.Config{
		Seed:         opts.Seed,
		Shards:       opts.Shards,
		Mode:         setting.Mode,
		BetaMax:      setting.BetaMax,
		CommRange:    6 * grid.Pitch, // the dense testbed is one hop
		LossProb:     0.05,
		FlashBlocks:  opts.FlashBlocks,
		SamplePeriod: opts.Duration / time.Duration(opts.SamplePoints*2),
		Tracer:       opts.Tracer,
		Telemetry:    opts.Telemetry,
		StorageMode:  opts.StorageMode,
		Disperse:     opts.Disperse,
	}, field, grid)
}

// RunIndoor executes one §IV-B setting and returns the network after the
// full run.
func RunIndoor(setting IndoorSetting, opts IndoorOpts) *core.Network {
	net := BuildIndoor(setting, opts)
	net.Run(sim.At(opts.Duration))
	return net
}

// Series is one named curve sampled at Times.
type Series struct {
	Times  []sim.Time
	Curves map[string][]float64
}

// IndoorResult bundles the three §IV-B time-series figures plus the
// spatial snapshots, computed from one run per setting.
type IndoorResult struct {
	Opts IndoorOpts
	// Miss is Fig 10, Redundancy Fig 11, Messages Fig 12.
	Miss, Redundancy, Messages Series
	// Networks gives access to each setting's final state (keyed by
	// setting name) for Figs 13/14/18-style analysis.
	Networks map[string]*core.Network
}

// Indoor runs all five settings and assembles Figs 10–12.
func Indoor(opts IndoorOpts) IndoorResult {
	times := sampleTimes(opts.Duration, opts.SamplePoints)
	res := IndoorResult{
		Opts:       opts,
		Miss:       Series{Times: times, Curves: map[string][]float64{}},
		Redundancy: Series{Times: times, Curves: map[string][]float64{}},
		Messages:   Series{Times: times, Curves: map[string][]float64{}},
		Networks:   map[string]*core.Network{},
	}
	settings := IndoorSettings()
	// The five settings are independent simulations; fan them across the
	// pool and aggregate in the fixed settings order.
	nets := Map(opts.Parallel, len(settings), func(i int) *core.Network {
		return RunIndoor(settings[i], opts)
	})
	for i, setting := range settings {
		net := nets[i]
		res.Networks[setting.Name] = net
		var miss, red, msgs []float64
		for _, t := range times {
			miss = append(miss, net.Collector.MissRatioAt(t))
			red = append(red, net.Collector.RedundancyRatioAt(t, mote.DefaultSampleRate))
			msgs = append(msgs, float64(net.Collector.MessageCountAt(t)))
		}
		res.Miss.Curves[setting.Name] = miss
		res.Redundancy.Curves[setting.Name] = red
		res.Messages.Curves[setting.Name] = msgs
	}
	return res
}

func sampleTimes(dur time.Duration, points int) []sim.Time {
	out := make([]sim.Time, 0, points)
	for i := 1; i <= points; i++ {
		out = append(out, sim.At(dur*time.Duration(i)/time.Duration(points)))
	}
	return out
}

// HeatmapAt returns the Fig 13 storage-occupancy heatmap (or the Fig 14
// overhead heatmap) of a finished run at time t, binned to the grid.
func HeatmapAt(net *core.Network, t sim.Time, overhead bool) *geometry.Heatmap {
	grid := workload.IndoorGrid()
	if overhead {
		return net.Collector.OverheadHeatmapAt(t, grid.Cols, grid.Rows)
	}
	return net.Collector.StorageHeatmapAt(t, grid.Cols, grid.Rows)
}

// ---------------------------------------------------------------------
// Figs 16–18 — the §IV-C forest deployment.
// ---------------------------------------------------------------------

// ForestOpts parameterizes the outdoor run.
type ForestOpts struct {
	Seed         int64
	WorkloadSeed int64
	Duration     time.Duration
	FlashBlocks  int
	// Shards selects the execution engine (core.Config.Shards).
	Shards int
	// Parallel is the worker count used by ForestSweep when running the
	// scenario over several seeds; a single Forest call is one simulation
	// and runs on the calling goroutine regardless.
	Parallel int
	// Tracer, when non-nil, receives structured protocol events from every
	// node (see internal/obs). Use Parallel <= 1 with a tracer.
	Tracer *obs.Tracer
}

// DefaultForestOpts mirrors §IV-C: 36 motes, 3 hours.
func DefaultForestOpts() ForestOpts {
	return ForestOpts{Seed: 3, WorkloadSeed: 2006, Duration: 3 * time.Hour, FlashBlocks: 1024}
}

// ForestResult bundles the §IV-C analyses.
type ForestResult struct {
	Opts ForestOpts
	Net  *core.Network
	// PerMinute is Fig 16: recorded seconds per one-minute bucket.
	PerMinute []float64
	// BytesByNode is Fig 17: recorded data volume per node location.
	BytesByNode map[int]float64
	// Positions maps node IDs to locations for rendering.
	Positions []geometry.Point
	// HottestNode is the node with the highest recorded volume.
	HottestNode int
	// MigratedFromHottest is Fig 18: chunks originated at the hottest
	// node now resident on each other node.
	MigratedFromHottest map[int]int
}

// Forest runs the outdoor deployment in full (balancing) mode.
func Forest(opts ForestOpts) ForestResult {
	return ForestSweep(opts, []int64{opts.Seed})[0]
}

// ForestSweep runs the outdoor deployment once per seed across
// opts.Parallel workers and returns the results in seed order. Results
// are bit-identical to calling Forest serially with each seed.
func ForestSweep(opts ForestOpts, seeds []int64) []ForestResult {
	return Map(opts.Parallel, len(seeds), func(i int) ForestResult {
		o := opts
		o.Seed = seeds[i]
		return forestRun(o)
	})
}

// forestRun executes one seed of the §IV-C scenario.
func forestRun(opts ForestOpts) ForestResult {
	positions := workload.ForestPositions(opts.WorkloadSeed)
	field := acoustics.NewField(1)
	field.DetectProb = 0.8
	fcfg := workload.DefaultForest()
	fcfg.Seed = opts.WorkloadSeed
	fcfg.Duration = opts.Duration
	workload.GenerateForest(field, fcfg)
	gcfg := group.DefaultConfig()
	net := core.NewNetwork(core.Config{
		Seed:         opts.Seed,
		Shards:       opts.Shards,
		Mode:         core.ModeFull,
		BetaMax:      2,
		CommRange:    30, // trees ~17 ft apart; radio reaches next-but-one
		LossProb:     0.10,
		FlashBlocks:  opts.FlashBlocks,
		Group:        &gcfg,
		SamplePeriod: 5 * time.Minute,
		Tracer:       opts.Tracer,
	}, field, positions)
	net.Run(sim.At(opts.Duration))

	res := ForestResult{
		Opts:        opts,
		Net:         net,
		Positions:   positions,
		PerMinute:   net.Collector.RecordedSecondsPerBucket(sim.At(opts.Duration), time.Minute),
		BytesByNode: net.Collector.RecordedBytesByNode(mote.DefaultSampleRate),
	}
	best, bestBytes := -1, -1.0
	for id, b := range res.BytesByNode {
		if b > bestBytes || (b == bestBytes && id < best) {
			best, bestBytes = id, b
		}
	}
	res.HottestNode = best
	// Fig 18: final placement of the hottest node's recordings.
	res.MigratedFromHottest = make(map[int]int)
	if best >= 0 {
		for holder, chunks := range net.Holdings() {
			if holder == best {
				continue
			}
			for _, c := range chunks {
				if int(c.Origin) == best {
					res.MigratedFromHottest[holder]++
				}
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Shared helpers for reduced-scale benchmark variants.
// ---------------------------------------------------------------------

// QuickIndoorOpts is a reduced-duration variant for benchmarks and smoke
// tests (same dynamics, ~8 minutes of virtual time, smaller flash).
func QuickIndoorOpts() IndoorOpts {
	return IndoorOpts{
		Seed:         42,
		WorkloadSeed: 7,
		Duration:     8 * time.Minute,
		FlashBlocks:  64,
		DetectProb:   0.6,
		SamplePoints: 8,
	}
}

// QuickForestOpts is a reduced-duration outdoor variant.
func QuickForestOpts() ForestOpts {
	return ForestOpts{Seed: 3, WorkloadSeed: 2006, Duration: 20 * time.Minute, FlashBlocks: 128}
}
