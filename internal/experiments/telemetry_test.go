package experiments

import (
	"fmt"
	"strings"
	"testing"

	"enviromic/internal/core"
	"enviromic/internal/mote"
	"enviromic/internal/render"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
)

// telemetryRunSignature runs the quick indoor lb-beta2 scenario with a
// metrics registry attached and folds the same headline metrics and
// rendered figure as traceRunSignature into a comparison string.
func telemetryRunSignature(t *testing.T, reg *telemetry.Registry, shards int) (string, *core.Network) {
	t.Helper()
	opts := QuickIndoorOpts()
	opts.Telemetry = reg
	opts.Shards = shards
	net := RunIndoor(IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2}, opts)
	end := sim.At(opts.Duration)
	var fig strings.Builder
	render.Heatmap(&fig, HeatmapAt(net, end, false), "bytes")
	sig := fmt.Sprintf("miss=%v red=%v msgs=%d stored=%d frames=%d kinds=%v\n%s",
		net.Collector.MissRatioAt(end),
		net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate),
		net.Collector.MessageCountAt(end),
		net.TotalStoredBytes(),
		net.Radio.Stats().TotalFrames,
		net.Radio.Stats().TxByKind,
		fig.String())
	return sig, net
}

// TestTelemetryLeavesRunByteIdentical is the telemetry layer's core
// guarantee, the same contract the tracer honors: metrics are pure
// observation, so attaching a registry changes neither the headline
// metrics nor the rendered figures — serial or sharded.
func TestTelemetryLeavesRunByteIdentical(t *testing.T) {
	base, _ := telemetryRunSignature(t, nil, 0)

	reg := telemetry.NewRegistry()
	serial, net := telemetryRunSignature(t, reg, 0)
	if serial != base {
		t.Errorf("telemetry perturbed the serial run\nbase:\n%s\nwith telemetry:\n%s", base, serial)
	}
	// The registry must have actually watched the run: the radio counter
	// agrees with the radio's own frame count, and the heartbeat gauge
	// reached the run's end time.
	if got, want := reg.Counter("enviromic_radio_tx_frames_total", "").Value(), int64(net.Radio.Stats().TotalFrames); got != want {
		t.Errorf("telemetry tx frames = %d, radio stats say %d", got, want)
	}
	if got := reg.Gauge("enviromic_sim_time_seconds", "").Value(); got != QuickIndoorOpts().Duration.Seconds() {
		t.Errorf("sim-time gauge = %v, want %v", got, QuickIndoorOpts().Duration.Seconds())
	}

	shReg := telemetry.NewRegistry()
	sharded, shNet := telemetryRunSignature(t, shReg, 2)
	if sharded != base {
		t.Errorf("telemetry perturbed the sharded run\nbase:\n%s\nwith telemetry:\n%s", base, sharded)
	}
	if got, want := shReg.Counter("enviromic_radio_tx_frames_total", "").Value(), int64(shNet.Radio.Stats().TotalFrames); got != want {
		t.Errorf("sharded telemetry tx frames = %d, radio stats say %d", got, want)
	}
	// The coordinator's series must be present and consistent: per-shard
	// event counts plus the global lane account for every callback.
	var shardEvents int64
	for i := 0; i < 2; i++ {
		shardEvents += shReg.Counter("enviromic_sim_shard_events_total", "",
			telemetry.L("shard", fmt.Sprint(i))).Value()
	}
	if shardEvents == 0 {
		t.Errorf("sharded run recorded no per-shard events")
	}
	if shReg.Counter("enviromic_sim_barriers_total", "").Value() == 0 {
		t.Errorf("sharded run recorded no barriers")
	}
	var sb strings.Builder
	if err := shReg.WritePrometheus(&sb); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if _, err := telemetry.ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("sharded run exposition does not parse: %v", err)
	}
}
