package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := Map(workers, 33, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	Map(3, 50, func(i int) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent jobs with 3 workers", p)
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map with 0 jobs returned %v", got)
	}
}

// ---------------------------------------------------------------------
// Determinism regression tests: the acceptance criterion is that serial
// and parallel harness runs produce bit-identical figure results for the
// same seeds.
// ---------------------------------------------------------------------

func TestFig6SerialParallelIdentical(t *testing.T) {
	base := Fig6Opts{
		Seed:    1,
		Runs:    3,
		DtaMS:   []int{10, 70},
		TrcList: []time.Duration{time.Second},
	}
	serial := base
	serial.Parallel = 1
	parallel := base
	parallel.Parallel = 4

	a, b := Fig6(serial), Fig6(parallel)
	if !reflect.DeepEqual(a.Mean, b.Mean) || !reflect.DeepEqual(a.CI90, b.CI90) {
		t.Fatalf("serial and parallel Fig6 diverge:\nserial:   %+v %+v\nparallel: %+v %+v",
			a.Mean, a.CI90, b.Mean, b.CI90)
	}
}

func TestIndoorSerialParallelIdentical(t *testing.T) {
	base := IndoorOpts{
		Seed:         42,
		WorkloadSeed: 7,
		Duration:     3 * time.Minute,
		FlashBlocks:  32,
		DetectProb:   0.6,
		SamplePoints: 4,
	}
	serial := base
	serial.Parallel = 1
	parallel := base
	parallel.Parallel = 5

	a, b := Indoor(serial), Indoor(parallel)
	for _, pair := range []struct {
		name string
		x, y Series
	}{
		{"miss", a.Miss, b.Miss},
		{"redundancy", a.Redundancy, b.Redundancy},
		{"messages", a.Messages, b.Messages},
	} {
		if !reflect.DeepEqual(pair.x.Curves, pair.y.Curves) {
			t.Errorf("serial and parallel Indoor %s curves diverge:\nserial:   %v\nparallel: %v",
				pair.name, pair.x.Curves, pair.y.Curves)
		}
	}
}

func TestAblationsSerialParallelIdentical(t *testing.T) {
	a := AblationsParallel(9, 1)
	b := AblationsParallel(9, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serial and parallel ablations diverge:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestForestSweepSerialParallelIdentical(t *testing.T) {
	opts := ForestOpts{Seed: 3, WorkloadSeed: 2006, Duration: 4 * time.Minute, FlashBlocks: 64}
	seeds := []int64{3, 4}

	serialOpts := opts
	serialOpts.Parallel = 1
	parallelOpts := opts
	parallelOpts.Parallel = 2

	a := ForestSweep(serialOpts, seeds)
	b := ForestSweep(parallelOpts, seeds)
	if len(a) != len(b) {
		t.Fatalf("sweep lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].PerMinute, b[i].PerMinute) {
			t.Errorf("seed %d: PerMinute diverges", seeds[i])
		}
		if !reflect.DeepEqual(a[i].BytesByNode, b[i].BytesByNode) {
			t.Errorf("seed %d: BytesByNode diverges", seeds[i])
		}
		if a[i].HottestNode != b[i].HottestNode {
			t.Errorf("seed %d: hottest node %d vs %d", seeds[i], a[i].HottestNode, b[i].HottestNode)
		}
		if !reflect.DeepEqual(a[i].MigratedFromHottest, b[i].MigratedFromHottest) {
			t.Errorf("seed %d: migration map diverges", seeds[i])
		}
	}
	// The sweep must also match individual Forest calls (the serial path).
	single := opts
	single.Seed = seeds[1]
	if c := Forest(single); !reflect.DeepEqual(c.PerMinute, a[1].PerMinute) {
		t.Error("ForestSweep result diverges from a direct Forest call")
	}
}
