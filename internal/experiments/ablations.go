package experiments

import (
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/mote"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
	"enviromic/internal/task"
	"enviromic/internal/workload"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Name    string
	With    float64
	Without float64
	Unit    string
	Comment string
}

// Ablations runs the DESIGN.md §5 design-choice comparisons at reduced
// scale and returns one row per knob. Used by `enviromic-figures
// -ablations` and mirrored by the Ablation* benchmarks.
func Ablations(seed int64) []AblationRow {
	var rows []AblationRow

	// Prelude: coverage of a short (0.8 s) event.
	preludeRun := func(prelude time.Duration) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(2*time.Second),
			800*time.Millisecond, 3, acoustics.VoiceTone))
		gcfg := group.DefaultConfig()
		gcfg.Prelude = prelude
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10, Group: &gcfg,
		}, field, grid)
		net.Run(sim.At(10 * time.Second))
		return net.Collector.MissRatioAt(sim.At(10 * time.Second))
	}
	rows = append(rows, AblationRow{
		Name: "prelude (0.8s event)", With: preludeRun(time.Second), Without: preludeRun(0),
		Unit: "miss ratio", Comment: "short events survive election latency only with the prelude",
	})

	// Overhearing REJECT: redundancy under loss.
	overhearRun := func(disable bool) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(time.Second),
			15*time.Second, 3, acoustics.VoiceTone))
		tcfg := task.DefaultConfig()
		tcfg.DisableOverhearing = disable
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10,
			LossProb: 0.25, Task: &tcfg,
		}, field, grid)
		net.Run(sim.At(18 * time.Second))
		return net.Collector.RedundancyRatioAt(sim.At(18*time.Second), mote.DefaultSampleRate)
	}
	rows = append(rows, AblationRow{
		Name: "overhearing REJECT (25% loss)", With: overhearRun(false), Without: overhearRun(true),
		Unit: "redundancy ratio", Comment: "lost CONFIRMs duplicate recorders unless overheard confirms reject",
	})

	// Piggybacking: frames for a fixed mixed control load.
	piggyRun := func(on bool) float64 {
		s := sim.NewScheduler(seed)
		rcfg := radio.DefaultConfig(5)
		rcfg.LossProb = 0
		net := radio.NewNetwork(s, rcfg)
		for i := 0; i < 4; i++ {
			st := netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
			if !on {
				st.MaxPiggyback = 0
			}
			sim.NewTicker(s, 500*time.Millisecond, "urgent", func() {
				st.SendUrgent(radio.Broadcast, ablationPayload{kind: "ctl", size: 9})
			})
			sim.NewTicker(s, time.Second, "state", func() {
				st.SendDelayTolerant(ablationPayload{kind: "state", size: 6})
			})
		}
		s.Run(sim.At(time.Minute))
		return float64(net.Stats().TotalFrames)
	}
	rows = append(rows, AblationRow{
		Name: "piggybacking", With: piggyRun(true), Without: piggyRun(false),
		Unit: "frames/minute", Comment: "delay-tolerant state rides on control frames",
	})

	// Recorder selection policy on a mobile event.
	selRun := func(bySignal bool) float64 {
		grid := workload.IndoorGrid()
		field := acoustics.NewField(1)
		src := workload.AddMobileCrossing(field, grid, 1, sim.At(2*time.Second))
		gcfg := group.DefaultConfig()
		gcfg.SelectBySignal = bySignal
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 3.5 * grid.Pitch,
			LossProb: 0.05, Group: &gcfg,
		}, field, grid)
		net.Run(src.End.Add(3 * time.Second))
		return net.Collector.MissRatioAt(src.End.Add(2 * time.Second))
	}
	rows = append(rows, AblationRow{
		Name: "selection: signal-first vs TTL-first", With: selRun(true), Without: selRun(false),
		Unit: "miss ratio", Comment: "equal-TTL groups fall back to signal either way",
	})
	return rows
}

type ablationPayload struct {
	kind string
	size int
}

func (p ablationPayload) Kind() string { return p.kind }
func (p ablationPayload) Size() int    { return p.size }
