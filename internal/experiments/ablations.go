package experiments

import (
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/geometry"
	"enviromic/internal/group"
	"enviromic/internal/mote"
	"enviromic/internal/netstack"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
	"enviromic/internal/task"
	"enviromic/internal/workload"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Name    string
	With    float64
	Without float64
	Unit    string
	Comment string
}

// Ablations runs the DESIGN.md §5 design-choice comparisons at reduced
// scale and returns one row per knob. Used by `enviromic-figures
// -ablations` and mirrored by the Ablation* benchmarks.
func Ablations(seed int64) []AblationRow {
	return AblationsParallel(seed, 1)
}

// ablationSpec is one design-choice comparison: run(true) evaluates the
// system with the knob on, run(false) with it off. Both runs build their
// own scheduler and field, so the eight runs of the four specs are
// independent jobs for the pool.
type ablationSpec struct {
	name, unit, comment string
	run                 func(with bool) float64
}

// AblationsParallel is Ablations with the eight underlying simulation
// runs fanned across `parallel` workers. Row order and values match the
// serial version exactly.
func AblationsParallel(seed int64, parallel int) []AblationRow {
	specs := ablationSpecs(seed)
	vals := Map(parallel, len(specs)*2, func(i int) float64 {
		return specs[i/2].run(i%2 == 0)
	})
	rows := make([]AblationRow, len(specs))
	for i, spec := range specs {
		rows[i] = AblationRow{
			Name: spec.name, Unit: spec.unit, Comment: spec.comment,
			With: vals[i*2], Without: vals[i*2+1],
		}
	}
	return rows
}

func ablationSpecs(seed int64) []ablationSpec {
	var specs []ablationSpec

	// Prelude: coverage of a short (0.8 s) event.
	preludeRun := func(prelude time.Duration) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(2*time.Second),
			800*time.Millisecond, 3, acoustics.VoiceTone))
		gcfg := group.DefaultConfig()
		gcfg.Prelude = prelude
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10, Group: &gcfg,
		}, field, grid)
		net.Run(sim.At(10 * time.Second))
		return net.Collector.MissRatioAt(sim.At(10 * time.Second))
	}
	specs = append(specs, ablationSpec{
		name: "prelude (0.8s event)", unit: "miss ratio",
		comment: "short events survive election latency only with the prelude",
		run: func(with bool) float64 {
			if with {
				return preludeRun(time.Second)
			}
			return preludeRun(0)
		},
	})

	// Overhearing REJECT: redundancy under loss.
	overhearRun := func(disable bool) float64 {
		grid := geometry.Grid{Cols: 4, Rows: 1, Pitch: 1}
		field := acoustics.NewField(1)
		field.AddSource(acoustics.StaticSource(1, grid.PointAt(1, 0), sim.At(time.Second),
			15*time.Second, 3, acoustics.VoiceTone))
		tcfg := task.DefaultConfig()
		tcfg.DisableOverhearing = disable
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 10,
			LossProb: 0.25, Task: &tcfg,
		}, field, grid)
		net.Run(sim.At(18 * time.Second))
		return net.Collector.RedundancyRatioAt(sim.At(18*time.Second), mote.DefaultSampleRate)
	}
	specs = append(specs, ablationSpec{
		name: "overhearing REJECT (25% loss)", unit: "redundancy ratio",
		comment: "lost CONFIRMs duplicate recorders unless overheard confirms reject",
		run:     func(with bool) float64 { return overhearRun(!with) },
	})

	// Piggybacking: frames for a fixed mixed control load.
	piggyRun := func(on bool) float64 {
		s := sim.NewScheduler(seed)
		rcfg := radio.DefaultConfig(5)
		rcfg.LossProb = 0
		net := radio.NewNetwork(s, rcfg)
		for i := 0; i < 4; i++ {
			st := netstack.NewStack(net.Join(i, geometry.Point{X: float64(i)}), s)
			if !on {
				st.MaxPiggyback = 0
			}
			sim.NewTicker(s, 500*time.Millisecond, "urgent", func() {
				st.SendUrgent(radio.Broadcast, ablationPayload{kind: kindAblCtl, size: 9})
			})
			sim.NewTicker(s, time.Second, "state", func() {
				st.SendDelayTolerant(ablationPayload{kind: kindAblState, size: 6})
			})
		}
		s.Run(sim.At(time.Minute))
		return float64(net.Stats().TotalFrames)
	}
	specs = append(specs, ablationSpec{
		name: "piggybacking", unit: "frames/minute",
		comment: "delay-tolerant state rides on control frames",
		run:     func(with bool) float64 { return piggyRun(with) },
	})

	// Recorder selection policy on a mobile event.
	selRun := func(bySignal bool) float64 {
		grid := workload.IndoorGrid()
		field := acoustics.NewField(1)
		src := workload.AddMobileCrossing(field, grid, 1, sim.At(2*time.Second))
		gcfg := group.DefaultConfig()
		gcfg.SelectBySignal = bySignal
		net := core.NewGridNetwork(core.Config{
			Seed: seed, Mode: core.ModeCooperative, CommRange: 3.5 * grid.Pitch,
			LossProb: 0.05, Group: &gcfg,
		}, field, grid)
		net.Run(src.End.Add(3 * time.Second))
		return net.Collector.MissRatioAt(src.End.Add(2 * time.Second))
	}
	specs = append(specs, ablationSpec{
		name: "selection: signal-first vs TTL-first", unit: "miss ratio",
		comment: "equal-TTL groups fall back to signal either way",
		run:     func(with bool) float64 { return selRun(with) },
	})
	return specs
}

// Ablation control kinds; RegisterKind is idempotent, so sharing names
// with the root bench payloads is fine.
var (
	kindAblCtl   = radio.RegisterKind("ctl")
	kindAblState = radio.RegisterKind("state")
)

type ablationPayload struct {
	kind radio.KindID
	size int
}

func (p ablationPayload) Kind() radio.KindID { return p.kind }
func (p ablationPayload) Size() int          { return p.size }
