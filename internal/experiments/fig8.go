package experiments

import (
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/group"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/task"
	"enviromic/internal/trace"
	"enviromic/internal/workload"
)

// Fig8 reproduces the voice experiment: a person reads the paper title
// while walking across the 7×4 grid at one grid length per second; an
// extra mote carried by the person records the reference. EnviroMic's
// cooperative recording captures the walk in one distributed file, which
// is stitched and compared with the reference.
func Fig8(seed int64) Fig8Result {
	grid := workload.VoiceGrid()
	field := acoustics.NewField(1)
	src := workload.AddVoiceWalk(field, grid, 1, sim.At(2*time.Second))

	// Paper parameters (Trc = 1 s, Dta = 70 ms); the prelude keeps the
	// utterance opening despite election latency.
	tcfg := task.DefaultConfig()
	gcfg := group.DefaultConfig()
	gcfg.Prelude = time.Second
	net := core.NewGridNetwork(core.Config{
		Seed:            seed,
		Mode:            core.ModeCooperative,
		CommRange:       4 * grid.Pitch,
		LossProb:        0.03,
		SynthesizeAudio: true,
		Task:            &tcfg,
		Group:           &gcfg,
	}, field, grid)
	net.Run(src.End.Add(3 * time.Second))

	// Reassemble and take the largest file: the walk's recording.
	files := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
	var best *retrieval.File
	for _, f := range files {
		if best == nil || f.Bytes() > best.Bytes() {
			best = f
		}
	}
	res := Fig8Result{SampleRate: mote.DefaultSampleRate}
	if best == nil {
		return res
	}
	var mask []bool
	res.Stitched, mask = trace.StitchWithMask(best, res.SampleRate)
	res.Coverage = trace.Coverage(best, res.SampleRate)

	// The reference mote rides with the speaker: synthesize its stream
	// over the stitched file's span so the two are time-aligned. The
	// correlation is computed over recorded windows only — the paper
	// compares the recorded segments visually, not the gaps.
	res.Reference = referenceStream(field, src, best.Start(), best.End(), res.SampleRate)
	res.EnvelopeCorr = trace.MaskedEnvelopeCorrelation(res.Reference, res.Stitched, mask, 256)
	return res
}

// referenceStream samples the field at the (moving) source position — the
// handheld reference mote of Fig 8(a).
func referenceStream(field *acoustics.Field, src *acoustics.Source, start, end sim.Time, rate float64) []byte {
	n := int(end.Sub(start).Seconds() * rate)
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	period := 1.0 / rate
	const refListener = 1 << 20 // distinct from any mote ID
	for i := range out {
		at := start.Add(time.Duration(float64(i) * period * float64(time.Second)))
		pos := src.PositionAt(at)
		// Stand slightly off the source so the 1/d law stays finite and
		// the reference level resembles a handheld mote.
		pos.X += 0.5
		out[i] = acoustics.Quantize(field.SignalAt(refListener, pos, at), 8)
	}
	return out
}
