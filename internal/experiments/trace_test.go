package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"enviromic/internal/core"
	"enviromic/internal/mote"
	"enviromic/internal/obs"
	"enviromic/internal/render"
	"enviromic/internal/sim"
)

// traceRunSignature runs one quick indoor lb-beta2 scenario and folds
// its headline metrics and a rendered figure into a comparison string.
func traceRunSignature(t *testing.T, tr *obs.Tracer) string {
	t.Helper()
	opts := QuickIndoorOpts()
	opts.Tracer = tr
	net := RunIndoor(IndoorSetting{Name: "lb-beta2", Mode: core.ModeFull, BetaMax: 2}, opts)
	end := sim.At(opts.Duration)
	var fig strings.Builder
	render.Heatmap(&fig, HeatmapAt(net, end, false), "bytes")
	return fmt.Sprintf("miss=%v red=%v msgs=%d stored=%d frames=%d kinds=%v\n%s",
		net.Collector.MissRatioAt(end),
		net.Collector.RedundancyRatioAt(end, mote.DefaultSampleRate),
		net.Collector.MessageCountAt(end),
		net.TotalStoredBytes(),
		net.Radio.Stats().TotalFrames,
		net.Radio.Stats().TxByKind,
		fig.String())
}

// TestTracingLeavesRunByteIdentical is the tracer's core guarantee: it
// is a pure observer, so enabling it changes neither the headline
// metrics nor the rendered figures, and the trace itself is
// reproducible bit-for-bit under a fixed seed.
func TestTracingLeavesRunByteIdentical(t *testing.T) {
	base := traceRunSignature(t, nil)

	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	traced := traceRunSignature(t, obs.New(sink))
	if err := sink.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	if traced != base {
		t.Fatalf("traced run diverged from untraced run:\n--- untraced ---\n%s\n--- traced ---\n%s", base, traced)
	}
	evs, err := obs.ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("tracer captured no events from a full-mode run")
	}

	var buf2 bytes.Buffer
	sink2 := obs.NewJSONL(&buf2)
	if got := traceRunSignature(t, obs.New(sink2)); got != base {
		t.Fatalf("second traced run diverged from untraced run")
	}
	if err := sink2.Close(); err != nil {
		t.Fatalf("sink close: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace output is not deterministic across identical runs")
	}
}
