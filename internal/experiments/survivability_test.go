package experiments_test

import (
	"strings"
	"testing"

	"enviromic/internal/experiments"
	"enviromic/internal/storage"
)

// TestSurvivabilityMatrix is the head-to-head acceptance run: under
// every crash-bearing chaos scenario, erasure-coded dispersal must keep
// strictly more data retrievable from live nodes than migration, with no
// protocol invariant broken in either mode.
func TestSurvivabilityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("six chaos-checked indoor runs; skipped in -short")
	}
	opts := experiments.QuickIndoorOpts()
	res, err := experiments.Survivability(opts, storage.DefaultDisperseConfig(), experiments.SurvivabilityScenarios())
	if err != nil {
		t.Fatal(err)
	}
	table := experiments.FormatSurvivability(res)
	t.Logf("\n%s", table)
	if len(res.Cells) != 6 {
		t.Fatalf("matrix has %d cells, want 6 (3 scenarios x 2 modes)", len(res.Cells))
	}
	byScenario := map[string]map[storage.Mode]experiments.SurvivabilityCell{}
	for _, c := range res.Cells {
		if c.OtherViolations != 0 {
			t.Errorf("%s/%s: %d non-survivability invariant violations (faults may cost data, never correctness)",
				c.Scenario, c.Mode, c.OtherViolations)
		}
		if c.TotalChunks == 0 {
			t.Errorf("%s/%s: no data stored; the cell is vacuous", c.Scenario, c.Mode)
		}
		if c.Mode == storage.ModeMigrate && c.LostGroups != 0 {
			t.Errorf("%s/migrate: %d lost groups; the k-of-n rule must be vacuous without dispersal",
				c.Scenario, c.LostGroups)
		}
		if byScenario[c.Scenario] == nil {
			byScenario[c.Scenario] = map[storage.Mode]experiments.SurvivabilityCell{}
		}
		byScenario[c.Scenario][c.Mode] = c
	}
	totalLosses := 0
	for _, c := range res.Cells {
		totalLosses += c.Losses
	}
	if totalLosses == 0 {
		// Any single crash can legitimately land on an empty checkpoint
		// window (CheckpointEvery=16), but across 6 cells x 3+ crashes at
		// least one window must have been dirty.
		t.Error("no attributed chaos losses recorded anywhere in the matrix")
	}
	for name, cells := range byScenario {
		mig, disp := cells[storage.ModeMigrate], cells[storage.ModeDisperse]
		if disp.Completeness <= mig.Completeness {
			t.Errorf("%s: dispersal completeness %.4f not strictly above migration %.4f",
				name, disp.Completeness, mig.Completeness)
		}
	}
	if adv := res.CrashAdvantage(); adv <= 0 {
		t.Errorf("aggregate crash advantage %.4f, want > 0", adv)
	}
	if !strings.Contains(table, "survivability matrix rs=6,4") {
		t.Errorf("table header malformed:\n%s", table)
	}
}
