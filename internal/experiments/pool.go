package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel run harness. Every experiment in the
// reproduction is a pure function of (scenario, seed) — each run owns its
// own sim.Scheduler and seeded RNG and touches no shared mutable state —
// so independent runs can fan out across goroutines while remaining
// bit-identical to a serial sweep: results land in an index-addressed
// slice and are aggregated in the same order a serial loop would have
// produced them. See DESIGN.md "Determinism under parallelism".

// DefaultParallel returns the worker count used when a caller asks for
// "as parallel as the machine allows": GOMAXPROCS.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// Map evaluates fn(0..n-1) and returns the results in index order.
// workers bounds the number of concurrent evaluations; values <= 1 run
// the jobs serially on the calling goroutine, in order. fn must be safe
// for concurrent invocation when workers > 1 (every experiment job is:
// it builds its own scheduler, field, and network from its index).
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
