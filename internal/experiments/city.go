package experiments

import (
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/core"
	"enviromic/internal/group"
	"enviromic/internal/obs"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
	"enviromic/internal/workload"
)

// ---------------------------------------------------------------------
// City — the 10k-mote scale scenario driving the sharded engine.
// ---------------------------------------------------------------------

// CityOpts parameterizes the city run. The scenario is not from the
// paper: it extrapolates the forest deployment's sparse connectivity to
// a street grid two orders of magnitude larger, which is the scale the
// sharded scheduler (DESIGN.md §14) exists for.
type CityOpts struct {
	Seed int64
	// City is the street-grid workload; zero fields take the
	// workload.DefaultCity values.
	City workload.CityConfig
	// Duration of the run (defaults to City.Duration).
	Duration time.Duration
	// FlashBlocks per mote. City motes are small: the interesting
	// dynamics are protocol throughput, not flash saturation.
	FlashBlocks int
	// Shards selects the execution engine (0/1 serial; >= 2 sharded).
	Shards int
	// Tracer receives structured protocol events (nil disables).
	Tracer *obs.Tracer
	// Telemetry receives runtime metrics (nil disables).
	Telemetry *telemetry.Registry
}

// DefaultCityOpts is the benchmark configuration: ~10.4k motes, one
// simulated hour.
func DefaultCityOpts() CityOpts {
	return CityOpts{
		Seed:        5,
		City:        workload.DefaultCity(),
		FlashBlocks: 128,
	}
}

// QuickCityOpts is a reduced city for smoke tests: a 4×4-block village
// of ~200 motes and a few simulated minutes.
func QuickCityOpts() CityOpts {
	city := workload.CityConfig{
		Seed:      11,
		Blocks:    4,
		BlockSize: 50,
		Spacing:   10,
		Duration:  3 * time.Minute,
		EventGap:  8 * time.Second,
		Mules:     2,
		Threshold: 1,
	}
	return CityOpts{Seed: 5, City: city, FlashBlocks: 64}
}

// CityResult bundles the run's headline numbers.
type CityResult struct {
	Opts   CityOpts
	Net    *core.Network
	Nodes  int
	Events int
	// Retrieval is the end-of-run reassembly check over all holdings.
	Retrieval retrieval.Summary
}

// City builds and runs the city scenario. The same opts produce a
// bit-identical network state for every Shards value (the determinism
// contract of core.Config.Shards).
func City(opts CityOpts) CityResult {
	net, events := BuildCity(opts)
	dur := opts.Duration
	if dur == 0 {
		dur = opts.City.Duration
	}
	net.Run(sim.At(dur))
	files := retrieval.Reassemble(net.Holdings(), retrieval.Query{All: true})
	return CityResult{
		Opts:      opts,
		Net:       net,
		Nodes:     len(net.Nodes),
		Events:    events,
		Retrieval: retrieval.Summarize(files, 500*time.Millisecond),
	}
}

// BuildCity constructs the city network without running it.
func BuildCity(opts CityOpts) (*core.Network, int) {
	city := opts.City
	if city.Duration == 0 {
		city.Duration = opts.Duration
	}
	if opts.Duration != 0 && opts.Duration < city.Duration {
		city.Duration = opts.Duration
	}
	field := acoustics.NewField(1)
	field.DetectProb = 0.8
	events := workload.GenerateCity(field, city)
	positions := workload.CityPositions(city)
	gcfg := group.DefaultConfig()
	// Street motes poll at 4 Hz instead of 10: events last seconds, so
	// detection latency is still well under a task period, and at 10k
	// motes the poll tick dominates the event count.
	gcfg.PollInterval = 250 * time.Millisecond
	flashBlocks := opts.FlashBlocks
	if flashBlocks == 0 {
		flashBlocks = 128
	}
	net := core.NewNetwork(core.Config{
		Seed:         opts.Seed,
		Shards:       opts.Shards,
		Mode:         core.ModeFull,
		BetaMax:      2,
		CommRange:    30, // reaches ~3 motes up and down the street
		LossProb:     0.05,
		FlashBlocks:  flashBlocks,
		Group:        &gcfg,
		SamplePeriod: 10 * time.Minute,
		Tracer:       opts.Tracer,
		Telemetry:    opts.Telemetry,
	}, field, positions)
	return net, events
}
