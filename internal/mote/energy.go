package mote

import (
	"math"
	"time"

	"enviromic/internal/sim"
)

// Energy models the mote battery at the fidelity the storage balancer
// needs: an idle floor plus explicit drains for radio air time, sampling,
// and flash writes. TTLenergy (§II-B) asks "when do I die if I keep moving
// data out at rate R", which DrainRateAt answers.
type Energy struct {
	// CapacityJ is the initial battery capacity in joules.
	CapacityJ float64
	// IdleW is the baseline draw in watts (always-on losses, MCU idle).
	IdleW float64
	// RadioW is the additional draw while the radio is transmitting or
	// receiving, in watts.
	RadioW float64
	// SampleW is the additional draw while the ADC is sampling, in watts.
	SampleW float64
	// FlashWriteJ is the energy per 256-byte block write, in joules.
	FlashWriteJ float64
	// RadioThroughput is the effective bulk-transfer goodput in bytes/s
	// used to convert a data-migration rate into radio duty cycle.
	RadioThroughput float64

	// extra accumulates all non-idle drain.
	extra float64
}

// DefaultEnergy approximates a MicaZ on 2 AA cells: ~20 kJ usable, ~24 mW
// idle-listening draw (the paper's "battery lasts several days" regime),
// ~60 mW radio, 250 kbps with protocol overhead giving ~12 kB/s goodput.
func DefaultEnergy() *Energy {
	return &Energy{
		CapacityJ:       20000,
		IdleW:           0.024,
		RadioW:          0.060,
		SampleW:         0.010,
		FlashWriteJ:     0.0002,
		RadioThroughput: 12000,
	}
}

// DrainRadio records dur of radio activity.
func (e *Energy) DrainRadio(dur time.Duration) { e.extra += e.RadioW * dur.Seconds() }

// DrainSample records dur of ADC sampling.
func (e *Energy) DrainSample(dur time.Duration) { e.extra += e.SampleW * dur.Seconds() }

// DrainFlashWrites records n block writes.
func (e *Energy) DrainFlashWrites(n int) { e.extra += e.FlashWriteJ * float64(n) }

// Remaining returns joules left at virtual time now.
func (e *Energy) Remaining(now sim.Time) float64 {
	r := e.CapacityJ - e.IdleW*now.Seconds() - e.extra
	if r < 0 {
		return 0
	}
	return r
}

// Depleted reports whether the battery is exhausted at now.
func (e *Energy) Depleted(now sim.Time) bool { return e.Remaining(now) <= 0 }

// DrainRateAt returns D(R): the total power draw in watts if the node
// moves data out at rate bytes/s from now on (§II-B). The radio must be
// active for the fraction of time needed to sustain that rate.
func (e *Energy) DrainRateAt(rate float64) float64 {
	if rate <= 0 {
		return e.IdleW
	}
	duty := rate / e.RadioThroughput
	if duty > 1 {
		duty = 1
	}
	return e.IdleW + e.RadioW*duty
}

// TTLEnergy returns the expected time until energy death if the node
// keeps migrating data at rate bytes/s: Remaining / D(R). An idle-only
// or healthy battery can report a very long horizon; +Inf is returned
// only for a zero drain rate (impossible with a positive IdleW).
func (e *Energy) TTLEnergy(now sim.Time, rate float64) time.Duration {
	d := e.DrainRateAt(rate)
	if d <= 0 {
		return time.Duration(math.MaxInt64)
	}
	secs := e.Remaining(now) / d
	if secs > float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}
