// Package mote models the sensing device underneath the EnviroMic
// protocols: an 8-bit ADC sampling a microphone at ~2.73 kHz, a CPU too
// slow to sample and talk at once (Fig 3), a 0.5 MB block flash, and a
// battery. The protocol packages see a Mote through small, explicit
// methods — capture samples, sense the envelope, account energy — so the
// same protocol code would port to real hardware.
package mote

import (
	"fmt"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

// DefaultSampleRate is the acoustic sampling frequency used throughout
// the paper's evaluation (§IV): 2.730 kHz.
const DefaultSampleRate = 2730.0

// Config parameterizes a Mote.
type Config struct {
	// SampleRate in Hz; defaults to DefaultSampleRate.
	SampleRate float64
	// FullScale is the pressure amplitude mapped to ADC full scale.
	FullScale float64
	// FlashBlocks is the local store capacity; defaults to
	// flash.DefaultBlocks (0.5 MB).
	FlashBlocks int
	// Energy overrides the battery model; nil uses DefaultEnergy.
	Energy *Energy
	// SynthesizeAudio controls whether CaptureSamples evaluates the
	// acoustic field per sample (needed for waveform experiments such as
	// Fig 8) or fills payloads with a cheap deterministic pattern
	// (sufficient for storage/protocol experiments, and much faster for
	// the hour-scale runs of Figs 10–18).
	SynthesizeAudio bool
}

// Mote is one deployed sensing device.
type Mote struct {
	ID  int
	Pos geometry.Point

	Sched    *sim.Scheduler
	Field    *acoustics.Field
	Store    *flash.Store
	Energy   *Energy
	Endpoint *radio.Endpoint
	Sampler  *Sampler

	cfg  Config
	dead bool
}

// New builds a mote, joins it to the radio network, and wires radio
// activity into both the energy model and the sampler's contention model.
func New(id int, pos geometry.Point, sched *sim.Scheduler, field *acoustics.Field, net *radio.Network, cfg Config) *Mote {
	if cfg.SampleRate == 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	if cfg.SampleRate <= 0 {
		panic(fmt.Sprintf("mote: invalid sample rate %v", cfg.SampleRate))
	}
	if cfg.FullScale == 0 {
		cfg.FullScale = 8
	}
	if cfg.FlashBlocks == 0 {
		cfg.FlashBlocks = flash.DefaultBlocks
	}
	energy := cfg.Energy
	if energy == nil {
		energy = DefaultEnergy()
	}
	m := &Mote{
		ID:      id,
		Pos:     pos,
		Sched:   sched,
		Field:   field,
		Store:   flash.NewStore(cfg.FlashBlocks),
		Energy:  energy,
		Sampler: NewSampler(sched),
		cfg:     cfg,
	}
	m.Endpoint = net.Join(id, pos)
	m.Endpoint.SetActivityListener(m)
	return m
}

// Config returns the mote's configuration.
func (m *Mote) Config() Config { return m.cfg }

// RadioActivity implements radio.ActivityListener: radio work drains the
// battery and stalls the sampler.
func (m *Mote) RadioActivity(_ radio.ActivityKind, dur time.Duration) {
	m.Energy.DrainRadio(dur)
	m.Sampler.RadioBusy(dur)
}

// SenseEnvelope returns the instantaneous signal envelope at the mote:
// the sum of audible source amplitudes. This is what the detector's
// running-average comparison consumes.
func (m *Mote) SenseEnvelope(at sim.Time) float64 {
	total := 0.0
	for _, s := range m.Field.AudibleSources(m.ID, m.Pos, at) {
		total += s.AmplitudeAt(m.Pos, at)
	}
	return total
}

// Audible reports whether any source is currently audible to this mote.
func (m *Mote) Audible(at sim.Time) bool {
	return m.Field.Audible(m.ID, m.Pos, at)
}

// LoudestSource returns the dominant audible source, or nil.
func (m *Mote) LoudestSource(at sim.Time) *acoustics.Source {
	return m.Field.LoudestSource(m.ID, m.Pos, at)
}

// SampleCount returns the number of ADC samples spanning [start, end).
func (m *Mote) SampleCount(start, end sim.Time) int {
	if end <= start {
		return 0
	}
	return int(end.Sub(start).Seconds() * m.cfg.SampleRate)
}

// CaptureSamples returns the quantized ADC stream the mote would record
// over [start, end). With SynthesizeAudio the acoustic field is evaluated
// at every sample instant; otherwise a deterministic placeholder pattern
// of the correct length is produced (the storage experiments only care
// about volume). Sampling energy is drained either way.
func (m *Mote) CaptureSamples(start, end sim.Time) []byte {
	n := m.SampleCount(start, end)
	if n == 0 {
		return nil
	}
	m.Energy.DrainSample(end.Sub(start))
	out := make([]byte, n)
	if m.cfg.SynthesizeAudio {
		period := 1.0 / m.cfg.SampleRate
		for i := range out {
			at := start.Add(time.Duration(float64(i) * period * float64(time.Second)))
			out[i] = acoustics.Quantize(m.Field.SignalAt(m.ID, m.Pos, at), m.cfg.FullScale)
		}
		return out
	}
	for i := range out {
		// Cheap deterministic filler carrying mote identity and position
		// in the stream, so tests can still detect misordered stitching.
		out[i] = byte(m.ID)<<4 ^ byte(i)
	}
	return out
}

// StoreChunks enqueues chunks into local flash, draining write energy.
// It returns the number of chunks stored; the remainder were dropped
// because flash is full (a recording miss the metrics layer will see as
// lost data).
func (m *Mote) StoreChunks(chunks []*flash.Chunk) int {
	stored := 0
	for _, c := range chunks {
		if err := m.Store.Enqueue(c); err != nil {
			break
		}
		stored++
	}
	m.Energy.DrainFlashWrites(stored)
	return stored
}

// Kill fails the mote: radio dead, sampler stopped. Flash contents
// survive for post-collection retrieval (§III-B.3). Reversible with
// Revive (chaos reboot).
func (m *Mote) Kill() {
	m.dead = true
	m.Endpoint.Kill()
	m.Sampler.Stop()
}

// Revive restores a killed mote (chaos reboot): the radio rejoins the
// medium powered on (the boot-time default — the mote may have died
// mid-recording with the radio off) and the sampler restarts on demand
// at the next recording. The energy model is untouched — a reboot does
// not recharge the battery.
func (m *Mote) Revive() {
	m.dead = false
	m.Endpoint.Revive()
	m.Endpoint.SetRadio(true)
}

// Alive reports whether the mote is functional.
func (m *Mote) Alive() bool { return m.dead == false && !m.Energy.Depleted(m.Sched.Now()) }
