package mote

import (
	"time"

	"enviromic/internal/sim"
)

// Sampler reproduces the MicaZ ADC timing behaviour measured in Fig 3:
// with the radio quiet, samples fire at the nominal interval exactly;
// while the radio stack is processing packets (either direction — the
// radio layer consumes CPU cycles whenever activity is detected, even if
// the application ignores the packet), the observed interval jitters
// between a stretched value and a shortened catch-up value.
//
// The model is phenomenological, matching the published measurement
// directly: a sample that falls inside a radio-busy window is displaced
// late by ContentionDelay (interrupt backlog), and the next sample fires
// early by CatchUp as the timer interrupt catches back up; sustained
// radio activity therefore alternates long/short intervals (with the
// paper's constants, 16 ↔ 9 jiffies around the 10-jiffy nominal).
type Sampler struct {
	// Interval is the nominal sampling period (paper: 10 jiffies).
	Interval time.Duration
	// ContentionDelay stretches a busy-window sample (paper: +6 jiffies,
	// observed interval 16 jiffies).
	ContentionDelay time.Duration
	// CatchUp shortens the interval after a displaced sample (paper: −1
	// jiffy, observed interval 9 jiffies).
	CatchUp time.Duration

	sched     *sim.Scheduler
	busyUntil sim.Time
	running   bool
	timer     sim.Timer
	displaced bool
	onSample  func(at sim.Time)
	// tick is the single sampling closure, created once at Start so the
	// hot per-sample path allocates nothing.
	tick func()
}

// NewSampler returns a sampler with the paper's measured constants.
func NewSampler(s *sim.Scheduler) *Sampler {
	return &Sampler{
		Interval:        10 * sim.Jiffy,
		ContentionDelay: 6 * sim.Jiffy,
		CatchUp:         1 * sim.Jiffy,
		sched:           s,
	}
}

// RadioBusy extends the CPU-busy window by dur from now. The mote feeds
// radio activity (TX and RX) in here.
func (sp *Sampler) RadioBusy(dur time.Duration) {
	until := sp.sched.Now().Add(dur)
	if until > sp.busyUntil {
		sp.busyUntil = until
	}
}

// Busy reports whether the CPU is inside a radio-busy window.
func (sp *Sampler) Busy() bool { return sp.sched.Now() < sp.busyUntil }

// Start begins sampling, invoking onSample at each (possibly jittered)
// sample instant. The first sample fires one interval from now. Starting
// an already-running sampler panics.
func (sp *Sampler) Start(onSample func(at sim.Time)) {
	if sp.running {
		panic("mote: sampler already running")
	}
	if sp.Interval <= 0 {
		panic("mote: sampler interval must be positive")
	}
	if sp.ContentionDelay < 0 || sp.CatchUp < 0 || sp.CatchUp >= sp.Interval {
		panic("mote: sampler jitter constants out of range")
	}
	sp.running = true
	sp.onSample = onSample
	sp.displaced = false
	sp.tick = sp.sample
	sp.schedule(sp.Interval)
}

// Stop halts sampling.
func (sp *Sampler) Stop() {
	sp.running = false
	sp.timer.Cancel()
}

// Running reports whether the sampler is active.
func (sp *Sampler) Running() bool { return sp.running }

func (sp *Sampler) schedule(d time.Duration) {
	sp.timer = sp.sched.AfterTimer(d, "mote.sample", sp.tick)
}

func (sp *Sampler) sample() {
	if !sp.running {
		return
	}
	next := sp.Interval
	switch {
	case sp.displaced:
		// Catch-up interval after a displaced sample (Fig 3: 9 jiffies).
		next = sp.Interval - sp.CatchUp
		sp.displaced = false
	case sp.Busy():
		// Displaced sample (Fig 3: 16 jiffies).
		next = sp.Interval + sp.ContentionDelay
		sp.displaced = true
	}
	sp.onSample(sp.sched.Now())
	if sp.running {
		sp.schedule(next)
	}
}
