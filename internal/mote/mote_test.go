package mote

import (
	"math"
	"testing"
	"time"

	"enviromic/internal/acoustics"
	"enviromic/internal/flash"
	"enviromic/internal/geometry"
	"enviromic/internal/radio"
	"enviromic/internal/sim"
)

func testRig(synth bool) (*sim.Scheduler, *acoustics.Field, *radio.Network, *Mote) {
	s := sim.NewScheduler(1)
	f := acoustics.NewField(1.0)
	cfg := radio.DefaultConfig(4)
	cfg.LossProb = 0
	n := radio.NewNetwork(s, cfg)
	m := New(0, geometry.Point{}, s, f, n, Config{SynthesizeAudio: synth, FlashBlocks: 64})
	return s, f, n, m
}

func TestSamplerFixedIntervalWhenQuiet(t *testing.T) {
	s := sim.NewScheduler(1)
	sp := NewSampler(s)
	var fires []sim.Time
	sp.Start(func(at sim.Time) { fires = append(fires, at) })
	s.Run(sim.At(200 * sim.Jiffy))
	sp.Stop()
	if len(fires) < 15 {
		t.Fatalf("only %d samples", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		if got := fires[i].Sub(fires[i-1]); got != 10*sim.Jiffy {
			t.Fatalf("quiet interval %d = %v, want 10 jiffies", i, got)
		}
	}
}

func TestSamplerJittersUnderRadioActivity(t *testing.T) {
	s := sim.NewScheduler(1)
	sp := NewSampler(s)
	var fires []sim.Time
	sp.Start(func(at sim.Time) { fires = append(fires, at) })
	// Keep the radio busy for a long stretch starting after a few clean
	// samples.
	s.At(sim.At(50*sim.Jiffy), "busy", func() { sp.RadioBusy(100 * sim.Jiffy) })
	s.Run(sim.At(300 * sim.Jiffy))
	sp.Stop()

	var intervals []time.Duration
	for i := 1; i < len(fires); i++ {
		intervals = append(intervals, fires[i].Sub(fires[i-1]))
	}
	long, short, nominal := 0, 0, 0
	for _, iv := range intervals {
		switch iv {
		case 16 * sim.Jiffy:
			long++
		case 9 * sim.Jiffy:
			short++
		case 10 * sim.Jiffy:
			nominal++
		default:
			t.Fatalf("unexpected interval %v (want 9, 10 or 16 jiffies)", iv)
		}
	}
	if long == 0 || short == 0 {
		t.Errorf("busy window produced no jitter: long=%d short=%d", long, short)
	}
	if long != short {
		t.Errorf("long and short intervals should alternate: %d vs %d", long, short)
	}
	if nominal == 0 {
		t.Error("quiet periods produced no nominal intervals")
	}
}

func TestSamplerStopAndRestart(t *testing.T) {
	s := sim.NewScheduler(1)
	sp := NewSampler(s)
	n := 0
	sp.Start(func(sim.Time) { n++ })
	s.Run(sim.At(25 * sim.Jiffy))
	sp.Stop()
	if sp.Running() {
		t.Error("Running() after Stop")
	}
	s.Run(sim.At(100 * sim.Jiffy))
	if n != 2 {
		t.Errorf("samples after stop: %d, want 2", n)
	}
	sp.Start(func(sim.Time) { n++ })
	s.Run(sim.At(150 * sim.Jiffy))
	if n < 5 {
		t.Errorf("restart did not resume sampling: %d", n)
	}
}

func TestSamplerDoubleStartPanics(t *testing.T) {
	s := sim.NewScheduler(1)
	sp := NewSampler(s)
	sp.Start(func(sim.Time) {})
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	sp.Start(func(sim.Time) {})
}

func TestEnergyAccounting(t *testing.T) {
	e := &Energy{CapacityJ: 100, IdleW: 1, RadioW: 10, SampleW: 2, FlashWriteJ: 0.5, RadioThroughput: 1000}
	at := sim.At(10 * time.Second)
	if got := e.Remaining(at); got != 90 {
		t.Errorf("idle-only remaining = %v, want 90", got)
	}
	e.DrainRadio(2 * time.Second)  // 20 J
	e.DrainSample(5 * time.Second) // 10 J
	e.DrainFlashWrites(4)          // 2 J
	if got := e.Remaining(at); got != 58 {
		t.Errorf("remaining = %v, want 58", got)
	}
	if e.Depleted(at) {
		t.Error("Depleted too early")
	}
	if !e.Depleted(sim.At(100 * time.Second)) {
		t.Error("not depleted after capacity exhausted")
	}
}

func TestEnergyDrainRate(t *testing.T) {
	e := &Energy{CapacityJ: 100, IdleW: 1, RadioW: 10, RadioThroughput: 1000}
	if got := e.DrainRateAt(0); got != 1 {
		t.Errorf("idle drain = %v, want 1", got)
	}
	if got := e.DrainRateAt(500); got != 6 { // 50% duty × 10 W + idle
		t.Errorf("half-duty drain = %v, want 6", got)
	}
	if got := e.DrainRateAt(5000); got != 11 { // duty clamps at 1
		t.Errorf("over-duty drain = %v, want 11", got)
	}
}

func TestEnergyTTL(t *testing.T) {
	e := &Energy{CapacityJ: 100, IdleW: 1, RadioW: 10, RadioThroughput: 1000}
	got := e.TTLEnergy(0, 0)
	if got != 100*time.Second {
		t.Errorf("TTLEnergy idle = %v, want 100s", got)
	}
	got = e.TTLEnergy(0, 500)
	if math.Abs(got.Seconds()-100.0/6) > 1e-6 {
		t.Errorf("TTLEnergy at 500 B/s = %v, want %.2fs", got, 100.0/6)
	}
}

func TestMoteSenseEnvelopeAndAudibility(t *testing.T) {
	s, f, _, m := testRig(false)
	f.AddSource(acoustics.StaticSource(1, geometry.Point{X: 2}, 0, 10*time.Second, 6, acoustics.VoiceTone))
	at := sim.At(time.Second)
	_ = s
	if !m.Audible(at) {
		t.Fatal("source at d=2 with loudness 6 (range 6) should be audible")
	}
	if got := m.SenseEnvelope(at); math.Abs(got-3) > 1e-9 {
		t.Errorf("envelope = %v, want 3", got)
	}
	if src := m.LoudestSource(at); src == nil || src.ID != 1 {
		t.Errorf("LoudestSource = %v", src)
	}
	if m.Audible(sim.At(20 * time.Second)) {
		t.Error("expired source still audible")
	}
}

func TestMoteSampleCount(t *testing.T) {
	_, _, _, m := testRig(false)
	n := m.SampleCount(0, sim.At(time.Second))
	if n != int(DefaultSampleRate) {
		t.Errorf("SampleCount(1s) = %d, want %d", n, int(DefaultSampleRate))
	}
	if m.SampleCount(sim.At(time.Second), 0) != 0 {
		t.Error("inverted interval should count 0")
	}
}

func TestMoteCaptureSynthesized(t *testing.T) {
	s, f, _, m := testRig(true)
	_ = s
	f.AddSource(acoustics.StaticSource(3, geometry.Point{X: 1}, 0, 10*time.Second, 5, acoustics.VoiceTone))
	buf := m.CaptureSamples(sim.At(time.Second), sim.At(1100*time.Millisecond))
	if len(buf) != 273 {
		t.Fatalf("captured %d samples, want 273", len(buf))
	}
	// The signal must actually vary (a real waveform, not a constant).
	varied := false
	for _, b := range buf {
		if b != buf[0] {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("synthesized capture is constant")
	}
	// Deterministic across identical motes.
	buf2 := m.CaptureSamples(sim.At(time.Second), sim.At(1100*time.Millisecond))
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatal("capture not deterministic")
		}
	}
}

func TestMoteCapturePlaceholder(t *testing.T) {
	_, _, _, m := testRig(false)
	buf := m.CaptureSamples(0, sim.At(100*time.Millisecond))
	if len(buf) != 273 {
		t.Fatalf("captured %d samples, want 273", len(buf))
	}
	if m.CaptureSamples(0, 0) != nil {
		t.Error("empty capture should be nil")
	}
}

func TestMoteStoreChunks(t *testing.T) {
	_, _, _, m := testRig(false)
	chunks := flash.SplitSamples(1, 0, 0, 0, sim.At(time.Second), make([]byte, flash.PayloadSize*3))
	if got := m.StoreChunks(chunks); got != 3 {
		t.Errorf("stored %d chunks, want 3", got)
	}
	if m.Store.Len() != 3 {
		t.Errorf("store Len = %d", m.Store.Len())
	}
}

func TestMoteStoreChunksStopsWhenFull(t *testing.T) {
	_, _, _, m := testRig(false) // 64 blocks
	big := flash.SplitSamples(1, 0, 0, 0, sim.At(time.Minute), make([]byte, flash.PayloadSize*100))
	if got := m.StoreChunks(big); got != 64 {
		t.Errorf("stored %d chunks into 64-block flash, want 64", got)
	}
}

func TestMoteRadioActivityDrainsAndStallsSampler(t *testing.T) {
	s, _, n, m := testRig(false)
	// A second mote transmits; mote 0 receives and pays CPU+energy.
	m2 := New(1, geometry.Point{X: 1}, s, m.Field, n, Config{FlashBlocks: 8})
	_ = m2
	before := m.Energy.Remaining(0)
	m.RadioActivity(radio.ActivityRx, time.Second)
	if got := m.Energy.Remaining(0); got >= before {
		t.Error("radio activity did not drain energy")
	}
	if !m.Sampler.Busy() {
		t.Error("radio activity did not stall the sampler")
	}
}

func TestMoteKill(t *testing.T) {
	_, _, _, m := testRig(false)
	if !m.Alive() {
		t.Fatal("fresh mote not alive")
	}
	m.Kill()
	if m.Alive() {
		t.Error("Alive() after Kill")
	}
	if m.Endpoint.Alive() {
		t.Error("endpoint alive after Kill")
	}
}

func TestMoteEnergyDepletionMeansDead(t *testing.T) {
	s := sim.NewScheduler(1)
	f := acoustics.NewField(1.0)
	n := radio.NewNetwork(s, radio.DefaultConfig(4))
	e := &Energy{CapacityJ: 1, IdleW: 1, RadioW: 1, RadioThroughput: 100}
	m := New(0, geometry.Point{}, s, f, n, Config{Energy: e, FlashBlocks: 8})
	s.Run(sim.At(2 * time.Second)) // idle drain exceeds capacity
	if m.Alive() {
		t.Error("mote alive with depleted battery")
	}
}

func TestMoteConfigValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	f := acoustics.NewField(1.0)
	n := radio.NewNetwork(s, radio.DefaultConfig(4))
	defer func() {
		if recover() == nil {
			t.Error("negative sample rate did not panic")
		}
	}()
	New(5, geometry.Point{}, s, f, n, Config{SampleRate: -1})
}
