package archive

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Segment compaction: supersession (a fuller copy of a chunk arriving
// after a partial one) leaves dead frames in the append-only segment.
// Compaction rewrites the segment keeping only live frames, with a
// protocol that is crash-safe at every step:
//
//  1. stream live frames (verbatim, CRCs included) to shard-NNN.seg.compact
//  2. fsync the temp file                          [hook: temp-written, temp-synced]
//  3. remove the index snapshot + fsync the dir    [hook: idx-removed]
//     — from here on, a reopen rebuilds by scanning, which is always correct
//  4. bump the shard's generation in the manifest  [hook: gen-bumped]
//     — a crash between 4 and 5 leaves the old segment with a gen-mismatched
//     manifest: any future snapshot stamped with the old gen is rejected
//     into a rescan of the old segment, which is still the live data
//  5. atomically rename temp over the segment + fsync the dir [hook: seg-renamed]
//  6. swap in-memory state under the write lock (new fd, new offsets,
//     epoch bump) — pure memory, cannot fail
//  7. write a fresh snapshot stamped with the new generation  [hook: snapshot-written]
//
// Every hook error models a kill at that boundary: the test reopens the
// directory and asserts equivalence. A store whose compaction aborted at
// or after step 3 keeps serving (memory and the segment file still agree)
// but stops writing snapshots (checkpointsBroken) — after step 3 this
// process no longer knows what a reopen will find on disk, so the only
// safe open path is the scan, and a snapshot written now could mask that.
// Compaction runs on the shard's writer goroutine, so no append is in
// flight; queries proceed against the old segment until the step-6 swap.

// compactSuffix names the compaction temp file next to the segment.
const compactSuffix = ".compact"

// CompactReport summarizes one compaction pass.
type CompactReport struct {
	Shards          int   `json:"shards"`            // shards rewritten (nonzero reclaim)
	ChunksKept      int   `json:"chunks_kept"`       // live chunks across rewritten shards
	ReclaimedBytes  int64 `json:"reclaimed_bytes"`   // dead frame bytes dropped
	SegmentBytesNow int64 `json:"segment_bytes_now"` // total segment bytes after the pass
}

// Compact rewrites every shard segment that holds superseded frames,
// reclaiming their bytes. Safe to call concurrently with ingest and
// queries; each shard compacts on its writer goroutine.
func (s *Store) Compact() (CompactReport, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return CompactReport{}, errClosed
	}
	var rep CompactReport
	var firstErr error
	for _, sh := range s.shards {
		sh.runCtl(func() {
			kept, reclaimed, err := sh.compact()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("archive: compacting shard %d: %w", sh.id, err)
			}
			if reclaimed > 0 {
				rep.Shards++
				rep.ChunksKept += kept
				rep.ReclaimedBytes += reclaimed
			}
		})
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		rep.SegmentBytesNow += sh.size
		sh.mu.RUnlock()
	}
	return rep, firstErr
}

// liveRef locates one live chunk for the offset rewrite.
type liveRef struct {
	fm  *fileMeta
	idx int // index into fm.chunks
}

// compact rewrites this shard's segment. Must run on the writer
// goroutine. Returns live chunk count and reclaimed bytes (0,0 when the
// segment has no dead frames).
func (sh *shard) compact() (kept int, reclaimed int64, err error) {
	if sh.supersededBytes == 0 {
		return 0, 0, nil
	}
	hook := sh.env.compactHook
	fire := func(point string) error {
		if hook == nil {
			return nil
		}
		return hook(sh.id, point)
	}

	// Collect live frames in segment order so the rewrite is one
	// sequential pass over the old segment.
	var refs []liveRef
	for _, fm := range sh.files {
		for i := range fm.chunks {
			refs = append(refs, liveRef{fm: fm, idx: i})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		return refs[i].fm.chunks[refs[i].idx].offset < refs[j].fm.chunks[refs[j].idx].offset
	})

	tmpPath := sh.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, err
	}
	abortEarly := func(e error) (int, int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, 0, e
	}

	// Stream-copy live frames verbatim (header + payload, CRC intact).
	if _, err := sh.f.Seek(0, io.SeekStart); err != nil {
		return abortEarly(err)
	}
	br := bufio.NewReaderSize(sh.f, 256<<10)
	bw := bufio.NewWriterSize(tmp, 256<<10)
	newOffsets := make([]int64, len(refs))
	var readPos, writePos int64
	for i, ref := range refs {
		m := ref.fm.chunks[ref.idx]
		frameStart := m.offset - frameHeaderSize
		if frameStart < readPos {
			return abortEarly(fmt.Errorf("overlapping frames at %d", m.offset))
		}
		if skip := frameStart - readPos; skip > 0 {
			if _, err := br.Discard(int(skip)); err != nil {
				return abortEarly(err)
			}
			readPos = frameStart
		}
		n := int64(frameHeaderSize) + int64(m.length)
		if _, err := io.CopyN(bw, br, n); err != nil {
			return abortEarly(err)
		}
		readPos += n
		newOffsets[i] = writePos + frameHeaderSize
		writePos += n
	}
	if err := bw.Flush(); err != nil {
		return abortEarly(err)
	}
	if err := fire("temp-written"); err != nil {
		return abortEarly(err)
	}
	if err := tmp.Sync(); err != nil {
		return abortEarly(err)
	}
	if err := fire("temp-synced"); err != nil {
		return abortEarly(err)
	}

	// Point of commitment: from here any failure leaves disk in a state a
	// reopen recovers from by scanning, but this process must stop
	// trusting snapshots.
	abortLate := func(e error) (int, int64, error) {
		sh.checkpointsBroken = true
		tmp.Close()
		return 0, 0, e
	}
	if err := os.Remove(sh.idxPath); err != nil && !os.IsNotExist(err) {
		return abortEarly(err)
	}
	syncDir(filepath.Dir(sh.path))
	if err := fire("idx-removed"); err != nil {
		return abortLate(err)
	}
	newGen := sh.gen + 1
	if err := sh.env.bumpGen(sh.id, newGen); err != nil {
		return abortLate(err)
	}
	if err := fire("gen-bumped"); err != nil {
		return abortLate(err)
	}
	if err := os.Rename(tmpPath, sh.path); err != nil {
		return abortLate(err)
	}
	syncDir(filepath.Dir(sh.path))
	if err := fire("seg-renamed"); err != nil {
		// The rename landed but the swap below never ran; memory now
		// disagrees with disk. Only hook-injected kills take this path —
		// the caller is expected to abandon the store (crashClose) and
		// reopen, which scans the compacted segment.
		return abortLate(err)
	}

	reclaimed = sh.supersededBytes
	kept = len(refs)

	sh.mu.Lock()
	old := sh.f
	sh.f = tmp
	sh.size = writePos
	sh.gen = newGen
	sh.epoch++
	sh.supersededBytes = 0
	if sh.unverifiedTo > 0 {
		// Live frames were copied verbatim, not re-verified; with offsets
		// shuffled the only safe bound is the whole new segment.
		sh.unverifiedTo = writePos
	}
	for i, ref := range refs {
		ref.fm.chunks[ref.idx].offset = newOffsets[i]
	}
	sh.mu.Unlock()
	old.Close()

	sh.lastCheckpoint = 0
	sh.env.cCompactions.Inc()
	sh.env.cReclaimed.Add(reclaimed)
	sh.writeSnapshot()
	fire("snapshot-written")
	return kept, reclaimed, nil
}
