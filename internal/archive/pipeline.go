package archive

import (
	"fmt"
	"sort"
	"time"

	"enviromic/internal/flash"
)

// The ingest pipeline: each shard owns one writer goroutine, the sole
// mutator of its segment and indexes. Store.Ingest splits a batch by
// shard and submits every shard's slice concurrently, so a batch that
// spans shards pipelines across disks instead of serializing; many
// concurrent callers hitting one shard are group-committed — the writer
// drains whatever submissions are queued (up to groupMax), stages them
// all, performs ONE segment write and (when SyncOnIngest is set) ONE
// fsync for the group, then publishes the index mutations under a single
// write-lock acquisition. Amortizing the fsync across the group is what
// makes durable ingest scale with client count: k clients cost one flush,
// not k.
//
// Staging runs lock-free: the writer reads the committed index without
// locking (no other goroutine mutates it) and accumulates all changes in
// a group-private overlay, so queries proceed under read locks for the
// whole encode/write/fsync. Only the final index publish takes the write
// lock, and it does no I/O.
//
// Semantics note: a submission's gap deltas are computed against the
// index as of its group's start and end. For a single caller (the mule
// flush loop, every test) a group is one submission and the deltas are
// exact; concurrent same-file submissions in one group see the group's
// combined effect, which is the honest answer to "what did this tour
// change" when tours land simultaneously anyway.

// groupMax bounds how many queued submissions one group commit absorbs.
const groupMax = 64

// submission is one shard's slice of an Ingest batch.
type submission struct {
	chunks []*flash.Chunk
	reply  chan subResult
}

// subResult is the writer's answer to one submission.
type subResult struct {
	deltas                  []FileDelta
	added, dups, superseded int
	err                     error
}

// stagedFile is the group-private overlay for one touched file.
type stagedFile struct {
	fm        *fileMeta // nil for a file new in this group
	id        flash.FileID
	newChunks []chunkMeta
	// replace maps committed chunk indexes to superseding metadata.
	replace map[int32]chunkMeta
	// overlaySeen maps dedup keys first seen in this group to indexes
	// into newChunks.
	overlaySeen map[uint64]int32
	deadBytes   int64 // frame bytes superseded by this group

	gapsBefore    int
	gapSpanBefore time.Duration
}

// perFileCounts tracks one submission's effect on one file.
type perFileCounts struct {
	added, dups, superseded int
}

// startWriter launches the shard's writer goroutine.
func (sh *shard) startWriter() {
	sh.wg.Add(1)
	go sh.runWriter()
}

// runWriter is the shard's writer loop: group-commit submissions, run
// control closures (sync, checkpoint, compaction) between groups, exit
// when the submission channel closes.
func (sh *shard) runWriter() {
	defer sh.wg.Done()
	for {
		select {
		case sub, ok := <-sh.subs:
			if !ok {
				return
			}
			group := []*submission{sub}
			for len(group) < groupMax {
				more, ok := sh.tryRecv()
				if !ok {
					break
				}
				group = append(group, more)
			}
			sh.commitGroup(group)
			sh.maybeCheckpoint()
			sh.maybeAutoCompact()
		case fn, ok := <-sh.ctl:
			if !ok {
				return
			}
			fn()
		}
	}
}

// tryRecv pulls one more queued submission without blocking.
func (sh *shard) tryRecv() (*submission, bool) {
	select {
	case sub, ok := <-sh.subs:
		if !ok {
			return nil, false
		}
		return sub, true
	default:
		return nil, false
	}
}

// runCtl executes fn on the writer goroutine and waits for it — the
// store's way to run compaction, checkpoints, and syncs with the
// guarantee that no append is in flight.
func (sh *shard) runCtl(fn func()) {
	done := make(chan struct{})
	sh.ctl <- func() {
		defer close(done)
		fn()
	}
	<-done
}

// commitGroup stages, writes, fsyncs, and publishes one submission group.
func (sh *shard) commitGroup(group []*submission) {
	sh.env.cGroups.Inc()
	sh.env.hGroupBatch.Observe(float64(len(group)))
	// Presize the encode buffer to the group's worst case (every chunk
	// surviving) and reuse the writer's scratch allocation across groups —
	// append-doubling a quarter-megabyte group costs more than the extra
	// capacity estimate pass.
	need := 0
	for _, sub := range group {
		for _, c := range sub.chunks {
			need += frameHeaderSize + flash.MinRecordSize + len(c.Data)
		}
	}
	if cap(sh.scratch) < need {
		sh.scratch = make([]byte, 0, need)
	}
	var (
		buf     = sh.scratch[:0]
		overlay = make(map[flash.FileID]*stagedFile)
		results = make([]subResult, len(group))
		// counts[i] is submission i's per-file tally, keyed by file.
		counts = make([]map[flash.FileID]*perFileCounts, len(group))
	)
	writeBase := sh.size

	// Stage: dedup/supersede decisions against committed index + overlay,
	// encode surviving frames into one buffer. Infallible per chunk except
	// for oversized payloads, which are rejected before staging so a
	// failed submission stages nothing.
	for i, sub := range group {
		counts[i] = make(map[flash.FileID]*perFileCounts)
		if err := validateChunks(sub.chunks); err != nil {
			results[i].err = err
			continue
		}
		for _, c := range sub.chunks {
			sf := overlay[c.File]
			if sf == nil {
				sf = sh.stageFile(c.File)
				overlay[c.File] = sf
			}
			pc := counts[i][c.File]
			if pc == nil {
				pc = &perFileCounts{}
				counts[i][c.File] = pc
			}
			buf = sh.stageChunk(sf, pc, c, writeBase, buf)
		}
	}

	if len(buf) > 0 {
		if _, err := sh.f.WriteAt(buf, writeBase); err != nil {
			// The group's frames may be partially on disk past sh.size;
			// the size is not advanced, so the next group overwrites them
			// and a reopen's CRC scan stops at the torn region.
			failGroup(group, results, fmt.Errorf("archive: appending to %s: %w", sh.path, err))
			return
		}
		if sh.env.syncOnIngest {
			syncStart := time.Now()
			if err := sh.f.Sync(); err != nil {
				failGroup(group, results, fmt.Errorf("archive: syncing %s: %w", sh.path, err))
				return
			}
			sh.env.cGroupSyncs.Inc()
			sh.env.hFsync.ObserveDuration(time.Since(syncStart))
		}
	}

	// Publish: merge the overlay into the committed index under one write
	// lock. Pure memory — queries are blocked only for the merge itself.
	sh.mu.Lock()
	for _, sf := range overlay {
		sh.publishFile(sf)
	}
	sh.size += int64(len(buf))
	sh.rebuildInterval()
	sh.mu.Unlock()

	// Report: gap state after the group, computed lock-free (the writer
	// is the only mutator), then reply to every submission.
	type afterState struct {
		gaps int
		span time.Duration
	}
	after := make(map[flash.FileID]afterState, len(overlay))
	for id := range overlay {
		g := gapsIn(sh.files[id].chunks, sh.env.gapTolerance)
		after[id] = afterState{gaps: len(g), span: gapSpan(g)}
	}
	for i, sub := range group {
		r := &results[i]
		if r.err == nil {
			for id, pc := range counts[i] {
				sf := overlay[id]
				a := after[id]
				r.deltas = append(r.deltas, FileDelta{
					File:          id,
					Added:         pc.added,
					Duplicates:    pc.dups,
					Superseded:    pc.superseded,
					GapsBefore:    sf.gapsBefore,
					GapsAfter:     a.gaps,
					GapSpanBefore: sf.gapSpanBefore,
					GapSpanAfter:  a.span,
				})
				r.added += pc.added
				r.dups += pc.dups
				r.superseded += pc.superseded
			}
			sort.Slice(r.deltas, func(a, b int) bool { return r.deltas[a].File < r.deltas[b].File })
		}
		sub.reply <- *r
	}
	sh.scratch = buf[:0]
}

// validateChunks rejects a submission containing an unencodable chunk
// before anything is staged.
func validateChunks(chunks []*flash.Chunk) error {
	for _, c := range chunks {
		if len(c.Data) > flash.PayloadSize {
			return fmt.Errorf("archive: chunk payload %d exceeds %d", len(c.Data), flash.PayloadSize)
		}
	}
	return nil
}

// stageFile opens a file's overlay, capturing its pre-group gap state.
func (sh *shard) stageFile(id flash.FileID) *stagedFile {
	// replace and overlaySeen stay nil until a chunk survives dedup — a
	// duplicate-only group allocates no per-file maps.
	sf := &stagedFile{id: id}
	if fm := sh.files[id]; fm != nil {
		sf.fm = fm
		fm.ensureSeen()
		g := gapsIn(fm.chunks, sh.env.gapTolerance)
		sf.gapsBefore = len(g)
		sf.gapSpanBefore = gapSpan(g)
	}
	return sf
}

// stageChunk applies one chunk's dedup/supersede decision to the overlay
// and encodes it into buf when it survives. Mirrors shard.applyChunk (the
// scan path) so an ingest-built index and a rebuilt one agree.
func (sh *shard) stageChunk(sf *stagedFile, pc *perFileCounts, c *flash.Chunk, writeBase int64, buf []byte) []byte {
	key := dedupKey(c.Origin, c.Seq)
	newLen := int32(flash.MinRecordSize + len(c.Data))

	// Current holder of the key, looking through the overlay first.
	var cur *chunkMeta
	var curInOverlay bool // points into newChunks (vs committed/replace)
	var overlayIdx int32
	var committedIdx int32
	if j, ok := sf.overlaySeen[key]; ok {
		cur, curInOverlay, overlayIdx = &sf.newChunks[j], true, j
	} else if sf.fm != nil {
		if i, ok := sf.fm.seen[key]; ok {
			committedIdx = i
			if r, ok := sf.replace[i]; ok {
				cur = &r
			} else {
				cur = &sf.fm.chunks[i]
			}
		}
	}

	if cur != nil && newLen <= cur.length {
		pc.dups++
		return buf // duplicate: never reaches disk
	}

	start := len(buf)
	buf, err := appendFrame(buf, c)
	if err != nil {
		// Unreachable after validateChunks; treat as a duplicate drop.
		pc.dups++
		return buf[:start]
	}
	meta := chunkMeta{
		offset: writeBase + int64(start) + frameHeaderSize,
		start:  c.Start, end: c.End,
		origin: c.Origin, length: newLen, seq: c.Seq,
	}
	switch {
	case cur == nil:
		if sf.overlaySeen == nil {
			sf.overlaySeen = make(map[uint64]int32)
		}
		sf.overlaySeen[key] = int32(len(sf.newChunks))
		sf.newChunks = append(sf.newChunks, meta)
		pc.added++
	case curInOverlay:
		// A longer copy landed in the same group: the staged frame is
		// already in buf and will be dead on arrival.
		sf.deadBytes += cur.frameBytes()
		sf.newChunks[overlayIdx] = meta
		pc.superseded++
	default:
		sf.deadBytes += cur.frameBytes()
		if sf.replace == nil {
			sf.replace = make(map[int32]chunkMeta)
		}
		sf.replace[committedIdx] = meta
		pc.superseded++
	}
	return buf
}

// publishFile merges one file's overlay into the committed index. Caller
// holds mu (write).
func (sh *shard) publishFile(sf *stagedFile) {
	if len(sf.newChunks) == 0 && len(sf.replace) == 0 {
		sh.supersededBytes += sf.deadBytes // dup-only groups can still strand staged frames
		return
	}
	fm := sf.fm
	if fm == nil {
		first := sf.newChunks[0]
		fm = &fileMeta{
			id:      sf.id,
			start:   first.start,
			end:     first.end,
			seen:    make(map[uint64]int32),
			origins: make(map[int32]struct{}),
		}
		sh.files[sf.id] = fm
	}
	for i, m := range sf.replace {
		old := fm.chunks[i]
		fm.chunks[i] = m
		fm.bytes += m.payloadBytes() - old.payloadBytes()
		sh.absorbSpan(fm, m)
	}
	for _, m := range sf.newChunks {
		fm.seen[dedupKey(m.origin, m.seq)] = int32(len(fm.chunks))
		fm.chunks = append(fm.chunks, m)
		fm.bytes += m.payloadBytes()
		sh.absorbSpan(fm, m)
	}
	fm.version++
	sh.supersededBytes += sf.deadBytes
}

// failGroup replies the same error to every submission in the group.
func failGroup(group []*submission, results []subResult, err error) {
	for i, sub := range group {
		r := results[i]
		r.deltas, r.added, r.dups, r.superseded = nil, 0, 0, 0
		if r.err == nil {
			r.err = err
		}
		sub.reply <- r
	}
}

// maybeCheckpoint writes an index snapshot once enough bytes accumulated
// since the last one. Runs on the writer goroutine between groups; errors
// are dropped (the next threshold crossing retries, and open always falls
// back to a scan).
func (sh *shard) maybeCheckpoint() {
	if sh.env.checkpointBytes <= 0 {
		return
	}
	if sh.size-sh.lastCheckpoint >= sh.env.checkpointBytes {
		sh.writeSnapshot()
	}
}

// maybeAutoCompact compacts the shard once enough superseded bytes
// accumulated. Runs on the writer goroutine between groups.
func (sh *shard) maybeAutoCompact() {
	if sh.env.autoCompact <= 0 || sh.supersededBytes < sh.env.autoCompact {
		return
	}
	sh.compact()
}
