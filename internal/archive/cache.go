package archive

import (
	"container/list"
	"sync"

	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
)

// fileCache is the LRU reassembly cache: fileID -> reassembled
// retrieval.File, bounded by approximate payload bytes. Entries carry the
// file's index version at build time; Store.File compares it against the
// live version, so an entry that survived an ingest (the invalidate only
// races, never guards) is still never served stale.
type fileCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recent
	items    map[flash.FileID]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	id      flash.FileID
	version uint64
	f       *retrieval.File
	bytes   int64
}

// newFileCache returns a cache bounded by maxBytes; negative disables
// caching entirely (every get misses, every put is dropped).
func newFileCache(maxBytes int64) *fileCache {
	return &fileCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[flash.FileID]*list.Element),
	}
}

func (fc *fileCache) disabled() bool { return fc.maxBytes < 0 }

// get returns the cached file and its build version.
func (fc *fileCache) get(id flash.FileID) (*retrieval.File, uint64, bool) {
	if fc.disabled() {
		return nil, 0, false
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	el, ok := fc.items[id]
	if !ok {
		fc.misses++
		return nil, 0, false
	}
	fc.hits++
	fc.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.f, e.version, true
}

// put inserts (or replaces) the entry and evicts from the LRU tail until
// the byte bound holds again; the fresh entry itself is never evicted.
func (fc *fileCache) put(id flash.FileID, version uint64, f *retrieval.File) {
	if fc.disabled() {
		return
	}
	size := int64(f.Bytes()) + int64(len(f.Chunks))*64 // payload + struct overhead estimate
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[id]; ok {
		fc.removeLocked(el)
	}
	e := &cacheEntry{id: id, version: version, f: f, bytes: size}
	fc.items[id] = fc.ll.PushFront(e)
	fc.bytes += size
	for fc.bytes > fc.maxBytes && fc.ll.Len() > 1 {
		fc.removeLocked(fc.ll.Back())
		fc.evictions++
	}
}

// invalidate drops the entry for id (prompt memory release on ingest;
// correctness comes from the version check).
func (fc *fileCache) invalidate(id flash.FileID) {
	if fc.disabled() {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[id]; ok {
		fc.removeLocked(el)
	}
}

func (fc *fileCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	fc.ll.Remove(el)
	delete(fc.items, e.id)
	fc.bytes -= e.bytes
}

// stats snapshots the cache.
func (fc *fileCache) stats() CacheStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return CacheStats{
		Entries:   fc.ll.Len(),
		Bytes:     fc.bytes,
		Hits:      fc.hits,
		Misses:    fc.misses,
		Evictions: fc.evictions,
	}
}
