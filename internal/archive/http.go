package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/mote"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/trace"
	"enviromic/internal/wav"
)

// NewHandler returns the archive's HTTP query service:
//
//	GET  /files                       list archived files
//	GET  /files/{id}                  one file's summary + chunk metadata
//	GET  /files/{id}/gaps?tolerance=  coverage gaps + the gap re-query
//	GET  /files/{id}/wav?rate=        reassembled audio as a WAV download
//	GET  /query?from=&to=&origins=    interval + origin query
//	POST /ingest                      framed chunk records (EncodeFrames)
//	POST /compact                     reclaim superseded segment bytes
//	GET  /stats                       store totals, cache, op counters
//	GET  /repl/status                 per-shard generation + size (replication source state)
//	GET  /repl/delta?cursor=&max=     next replication batch (segment frames)
//	GET  /repl/manifest?files=        chunk-key metadata for federated merges
//	GET  /repl/file/{id}              one file's chunks in wire framing
//
// Times in query parameters are Go durations since simulation start
// ("90s", "1m30s") or bare seconds ("90", "90.5"). The handler is safe
// for concurrent use; mount it under "/" next to pprof/expvar the same
// way enviromic-sim's -http debug mux is wired.
func NewHandler(s *Store) http.Handler {
	h := &handler{store: s}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /files", h.files)
	mux.HandleFunc("GET /files/{id}", h.file)
	mux.HandleFunc("GET /files/{id}/gaps", h.gaps)
	mux.HandleFunc("GET /files/{id}/wav", h.wav)
	mux.HandleFunc("GET /query", h.query)
	mux.HandleFunc("POST /ingest", h.ingest)
	mux.HandleFunc("POST /compact", h.compact)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /repl/status", h.replStatus)
	mux.HandleFunc("GET /repl/delta", h.replDelta)
	mux.HandleFunc("GET /repl/manifest", h.replManifest)
	mux.HandleFunc("GET /repl/file/{id}", h.replFile)
	return mux
}

type handler struct {
	store *Store
}

// EndpointOf maps an archive request to its route pattern ("/files/{id}/wav"
// rather than the concrete path) so the telemetry middleware's per-endpoint
// series stay low-cardinality. Unknown paths collapse to "other".
func EndpointOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/files":
		return "/files"
	case strings.HasPrefix(p, "/files/"):
		switch {
		case strings.HasSuffix(p, "/gaps"):
			return "/files/{id}/gaps"
		case strings.HasSuffix(p, "/wav"):
			return "/files/{id}/wav"
		default:
			return "/files/{id}"
		}
	case strings.HasPrefix(p, "/repl/"):
		switch {
		case p == "/repl/status", p == "/repl/delta", p == "/repl/manifest":
			return p
		default:
			return "/repl/file/{id}"
		}
	case p == "/query", p == "/ingest", p == "/compact", p == "/stats", p == "/metrics":
		return p
	default:
		return "other"
	}
}

// FileInfoJSON is FileInfo in response form: times both as raw
// nanoseconds (machine use) and seconds (human use).
type FileInfoJSON struct {
	ID       flash.FileID `json:"id"`
	Start    int64        `json:"start_ns"`
	End      int64        `json:"end_ns"`
	StartSec float64      `json:"start_s"`
	EndSec   float64      `json:"end_s"`
	Chunks   int          `json:"chunks"`
	Bytes    int64        `json:"bytes"`
	Origins  []int32      `json:"origins"`
	Gaps     int          `json:"gaps"`
}

func InfoJSON(fi FileInfo) FileInfoJSON {
	origins := fi.Origins
	if origins == nil {
		origins = []int32{}
	}
	return FileInfoJSON{
		ID: fi.ID, Start: int64(fi.Start), End: int64(fi.End),
		StartSec: fi.Start.Seconds(), EndSec: fi.End.Seconds(),
		Chunks: fi.Chunks, Bytes: fi.Bytes, Origins: origins, Gaps: fi.Gaps,
	}
}

type gapJSON struct {
	StartSec float64 `json:"start_s"`
	EndSec   float64 `json:"end_s"`
	Seconds  float64 `json:"seconds"`
}

func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ParseTime accepts a Go duration ("90s") or bare seconds ("90.5") since
// simulation start.
func ParseTime(s string) (sim.Time, error) {
	if s == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		return sim.At(d), nil
	}
	if sec, err := strconv.ParseFloat(s, 64); err == nil {
		return sim.Time(sec * float64(time.Second)), nil
	}
	return 0, fmt.Errorf("bad time %q (want a duration like 90s or seconds)", s)
}

func (h *handler) fileID(r *http.Request) (flash.FileID, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad file id %q", raw)
	}
	return flash.FileID(id), nil
}

func (h *handler) files(w http.ResponseWriter, r *http.Request) {
	infos := h.store.Files()
	out := make([]FileInfoJSON, 0, len(infos))
	for _, fi := range infos {
		out = append(out, InfoJSON(fi))
	}
	WriteJSON(w, out)
}

func (h *handler) file(w http.ResponseWriter, r *http.Request) {
	id, err := h.fileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fi, err := h.store.Info(id)
	if errors.Is(err, ErrNotFound) {
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	f, err := h.store.File(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	type chunkJSON struct {
		Origin   int32   `json:"origin"`
		Seq      uint32  `json:"seq"`
		StartSec float64 `json:"start_s"`
		EndSec   float64 `json:"end_s"`
		Bytes    int     `json:"bytes"`
	}
	chunks := make([]chunkJSON, 0, len(f.Chunks))
	for _, c := range f.Chunks {
		chunks = append(chunks, chunkJSON{
			Origin: c.Origin, Seq: c.Seq,
			StartSec: c.Start.Seconds(), EndSec: c.End.Seconds(),
			Bytes: len(c.Data),
		})
	}
	WriteJSON(w, struct {
		FileInfoJSON
		DurationSec float64     `json:"duration_s"`
		ChunkList   []chunkJSON `json:"chunk_list"`
	}{InfoJSON(fi), f.Duration().Seconds(), chunks})
}

func (h *handler) gaps(w http.ResponseWriter, r *http.Request) {
	id, err := h.fileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tolerance := h.store.GapTolerance()
	if s := r.URL.Query().Get("tolerance"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad tolerance %q", s)
			return
		}
		tolerance = d
	}
	gaps, err := h.store.Gaps(id, tolerance)
	if errors.Is(err, ErrNotFound) {
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	out := make([]gapJSON, 0, len(gaps))
	for _, g := range gaps {
		out = append(out, gapJSON{
			StartSec: g.Start.Seconds(),
			EndSec:   g.End.Seconds(),
			Seconds:  g.End.Sub(g.Start).Seconds(),
		})
	}
	// The re-query a mule would flood to fill what's still missing —
	// the same shape Mule.MissingFiles produces in the field. The parity
	// sibling rides along so dispersal-mode fragments that can decode
	// the gap are collected too.
	requery := []flash.FileID{}
	if len(gaps) > 0 {
		requery = []flash.FileID{id, id | erasure.ParityFileBit}
	}
	WriteJSON(w, struct {
		File         flash.FileID   `json:"file"`
		ToleranceSec float64        `json:"tolerance_s"`
		Gaps         []gapJSON      `json:"gaps"`
		RequeryFiles []flash.FileID `json:"requery_files"`
	}{id, tolerance.Seconds(), out, requery})
}

func (h *handler) wav(w http.ResponseWriter, r *http.Request) {
	id, err := h.fileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rate := mote.DefaultSampleRate
	if s := r.URL.Query().Get("rate"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad rate %q", s)
			return
		}
		rate = v
	}
	// Erasure-aware read: gaps coverable by archived parity fragments
	// are reconstructed before stitching.
	f, _, err := h.store.FileErasure(id)
	if errors.Is(err, ErrNotFound) {
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	samples := trace.Stitch(f, rate)
	if len(samples) == 0 {
		httpError(w, http.StatusUnprocessableEntity, "file %d renders no samples", id)
		return
	}
	w.Header().Set("Content-Type", "audio/wav")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=file-%d.wav", id))
	if err := wav.Write(w, samples, int(rate)); err != nil {
		// Headers are gone; nothing to do but log-level surface via 500
		// if nothing was written yet — in practice wav.Write fails only
		// on bad input, caught above.
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := ParseTime(q.Get("from"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "from: %v", err)
		return
	}
	to, err := ParseTime(q.Get("to"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "to: %v", err)
		return
	}
	var origins map[int32]bool
	if s := q.Get("origins"); s != "" {
		origins = make(map[int32]bool)
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseInt(part, 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad origin %q", part)
				return
			}
			origins[int32(v)] = true
		}
	}
	infos := h.store.Query(from, to, origins)
	out := make([]FileInfoJSON, 0, len(infos))
	for _, fi := range infos {
		out = append(out, InfoJSON(fi))
	}
	WriteJSON(w, out)
}

func (h *handler) ingest(w http.ResponseWriter, r *http.Request) {
	chunks, err := DecodeFrames(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := h.store.Ingest(chunks)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	WriteJSON(w, ingestReportJSON(rep))
}

// ingestReportJSON shapes an IngestReport for the wire, including the
// follow-up re-query.
func ingestReportJSON(rep IngestReport) any {
	type deltaJSON struct {
		File          flash.FileID `json:"file"`
		Added         int          `json:"added"`
		Duplicates    int          `json:"duplicates"`
		Superseded    int          `json:"superseded"`
		GapsBefore    int          `json:"gaps_before"`
		GapsAfter     int          `json:"gaps_after"`
		GapSpanBefore float64      `json:"gap_span_before_s"`
		GapSpanAfter  float64      `json:"gap_span_after_s"`
	}
	deltas := make([]deltaJSON, 0, len(rep.Files))
	for _, d := range rep.Files {
		deltas = append(deltas, deltaJSON{
			File: d.File, Added: d.Added, Duplicates: d.Duplicates,
			Superseded: d.Superseded,
			GapsBefore: d.GapsBefore, GapsAfter: d.GapsAfter,
			GapSpanBefore: d.GapSpanBefore.Seconds(),
			GapSpanAfter:  d.GapSpanAfter.Seconds(),
		})
	}
	requery := requeryIDs(rep.Requery())
	return struct {
		Added      int            `json:"added"`
		Duplicates int            `json:"duplicates"`
		Superseded int            `json:"superseded"`
		Files      []deltaJSON    `json:"files"`
		Requery    []flash.FileID `json:"requery_files"`
	}{rep.Added, rep.Duplicates, rep.Superseded, deltas, requery}
}

// requeryIDs flattens a gap re-query's file set, sorted.
func requeryIDs(q retrieval.Query) []flash.FileID {
	ids := make([]flash.FileID, 0, len(q.Files))
	for id := range q.Files {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func (h *handler) compact(w http.ResponseWriter, r *http.Request) {
	rep, err := h.store.Compact()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	WriteJSON(w, rep)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, h.store.Stats())
}

// Replication delta response headers: the advanced cursor to resume
// from, and the byte lag still unshipped (0 = caught up).
const (
	ReplCursorHeader = "X-Repl-Cursor"
	ReplLagHeader    = "X-Repl-Lag"
)

func (h *handler) replStatus(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, h.store.ReplStatus())
}

func (h *handler) replDelta(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cur, err := ParseReplCursor(q.Get("cursor"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "cursor: %v", err)
		return
	}
	var maxBytes int64
	if s := q.Get("max"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad max %q", s)
			return
		}
		maxBytes = v
	}
	frames, next, lag, err := h.store.Delta(cur, maxBytes)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ReplCursorHeader, next.String())
	w.Header().Set(ReplLagHeader, strconv.FormatInt(lag, 10))
	w.Write(frames)
}

func (h *handler) replManifest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := ParseTime(q.Get("from"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "from: %v", err)
		return
	}
	to, err := ParseTime(q.Get("to"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "to: %v", err)
		return
	}
	var files map[flash.FileID]bool
	if s := q.Get("files"); s != "" {
		files = make(map[flash.FileID]bool)
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad file id %q", part)
				return
			}
			files[flash.FileID(v)] = true
		}
	}
	ms := h.store.Manifest(from, to, nil, files)
	if ms == nil {
		ms = []FileManifest{}
	}
	WriteJSON(w, ms)
}

func (h *handler) replFile(w http.ResponseWriter, r *http.Request) {
	id, err := h.fileID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	frames, err := h.store.FileFrames(id)
	if errors.Is(err, ErrNotFound) {
		httpError(w, http.StatusNotFound, "file %d not found", id)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frames)
}
