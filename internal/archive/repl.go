package archive

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// Replication export. A peer station replicates this archive by pulling
// deltas: the segment logs already store chunks in the exact wire
// framing POST /ingest accepts (EncodeFrames), so a delta is raw segment
// bytes copied from a per-shard (generation, offset) cursor, cut at a
// frame boundary. The puller ingests the frames through its normal
// dedup path — (origin, seq) duplicates are dropped, strictly longer
// copies supersede — which makes re-pulling any byte range idempotent
// and lets a cursor reset cheaply: when compaction bumps a shard's
// generation the cursor restarts that shard from zero and the receiver
// absorbs the re-sent frames as duplicates.

// ShardCursor is one shard's replication position: the segment
// generation the offset is valid for, and the byte offset of the next
// frame to ship.
type ShardCursor struct {
	Gen uint64
	Off int64
}

// ReplCursor is a full replication cursor, one entry per shard. A nil
// or short cursor reads missing shards from offset zero.
type ReplCursor []ShardCursor

// String renders the cursor as "gen:off,gen:off,...", the /repl/delta
// query-parameter form.
func (c ReplCursor) String() string {
	parts := make([]string, len(c))
	for i, sc := range c {
		parts[i] = strconv.FormatUint(sc.Gen, 10) + ":" + strconv.FormatInt(sc.Off, 10)
	}
	return strings.Join(parts, ",")
}

// ParseReplCursor parses the String form. An empty string is the zero
// cursor (replicate everything).
func ParseReplCursor(s string) (ReplCursor, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	cur := make(ReplCursor, len(parts))
	for i, p := range parts {
		gen, off, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("archive: bad cursor part %q (want gen:off)", p)
		}
		g, err := strconv.ParseUint(gen, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("archive: bad cursor generation %q", gen)
		}
		o, err := strconv.ParseInt(off, 10, 64)
		if err != nil || o < 0 {
			return nil, fmt.Errorf("archive: bad cursor offset %q", off)
		}
		cur[i] = ShardCursor{Gen: g, Off: o}
	}
	return cur, nil
}

// DefaultDeltaBytes is the delta batch budget when the caller passes
// maxBytes <= 0.
const DefaultDeltaBytes = 1 << 20

// Delta returns the next batch of replication frames after cur, cut at
// a frame boundary, along with the advanced cursor and the byte lag
// still unshipped after this batch (lag > 0 means call again). The
// frames are segment-log bytes — exactly what POST /ingest and
// DecodeFrames accept. A shard whose generation no longer matches the
// cursor (compaction ran) restarts from offset zero. Each call makes
// progress: at least one frame per behind shard is returned even when
// maxBytes is smaller than a frame.
func (s *Store) Delta(cur ReplCursor, maxBytes int64) (frames []byte, next ReplCursor, lag int64, err error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, nil, 0, errClosed
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDeltaBytes
	}
	// A frame is at most header + max record; reading this much always
	// yields at least one whole frame of progress.
	minRead := int64(frameHeaderSize + flash.MaxRecordSize)
	next = make(ReplCursor, len(s.shards))
	budget := maxBytes
	for i, sh := range s.shards {
		sh.mu.RLock()
		gen, size, f := sh.gen, sh.size, sh.f
		from := int64(0)
		if i < len(cur) && cur[i].Gen == gen {
			from = cur[i].Off
			if from > size {
				// A cursor past the end of a same-generation segment can
				// only come from a corrupted cursor store; restart the
				// shard rather than trust it.
				from = 0
			}
		}
		want := size - from
		if want <= 0 || f == nil {
			sh.mu.RUnlock()
			next[i] = ShardCursor{Gen: gen, Off: from}
			continue
		}
		if budget <= 0 {
			sh.mu.RUnlock()
			next[i] = ShardCursor{Gen: gen, Off: from}
			lag += want
			continue
		}
		readLen := want
		if readLen > budget {
			readLen = budget
			if readLen < minRead {
				readLen = minRead
				if readLen > want {
					readLen = want
				}
			}
		}
		buf := make([]byte, readLen)
		n, rerr := f.ReadAt(buf, from)
		sh.mu.RUnlock()
		if rerr != nil && int64(n) < readLen {
			return nil, nil, 0, fmt.Errorf("archive: reading delta of shard %d at %d: %w", i, from, rerr)
		}
		valid := framePrefix(buf[:n])
		frames = append(frames, buf[:valid]...)
		next[i] = ShardCursor{Gen: gen, Off: from + int64(valid)}
		budget -= int64(valid)
		lag += want - int64(valid)
	}
	return frames, next, lag, nil
}

// framePrefix walks frame headers from the start of b and returns the
// length of the longest prefix made of whole frames. b must begin at a
// frame boundary (cursors only ever advance by whole frames). CRC
// validation is left to the receiver's DecodeFrames.
func framePrefix(b []byte) int {
	off := 0
	for off+frameHeaderSize <= len(b) {
		n := int(binary.BigEndian.Uint32(b[off:]))
		if n < flash.MinRecordSize || n > flash.MaxRecordSize {
			break // torn or corrupt header: stop at the last good frame
		}
		if off+frameHeaderSize+n > len(b) {
			break
		}
		off += frameHeaderSize + n
	}
	return off
}

// ReplShardStatus is one shard's replication source state.
type ReplShardStatus struct {
	Gen  uint64 `json:"gen"`
	Size int64  `json:"size"`
}

// ReplStatus is the /repl/status snapshot a puller uses to size its lag
// against this station.
type ReplStatus struct {
	Shards []ReplShardStatus `json:"shards"`
	Files  int               `json:"files"`
	Chunks int               `json:"chunks"`
}

// ReplStatus reports each shard's current generation and segment size —
// the end-of-log cursor — plus index totals.
func (s *Store) ReplStatus() ReplStatus {
	st := ReplStatus{Shards: make([]ReplShardStatus, len(s.shards))}
	for i, sh := range s.shards {
		sh.mu.RLock()
		st.Shards[i] = ReplShardStatus{Gen: sh.gen, Size: sh.size}
		for _, fm := range sh.files {
			st.Files++
			st.Chunks += len(fm.chunks)
		}
		sh.mu.RUnlock()
	}
	return st
}

// Lag returns how many segment bytes cur still has to pull to catch up
// with status: the sum over shards of size − offset, counting the whole
// shard when the generations disagree.
func (st ReplStatus) Lag(cur ReplCursor) int64 {
	var lag int64
	for i, ss := range st.Shards {
		off := int64(0)
		if i < len(cur) && cur[i].Gen == ss.Gen {
			off = cur[i].Off
		}
		if ss.Size > off {
			lag += ss.Size - off
		}
	}
	return lag
}

// ChunkKey is one archived chunk's identity and span — the metadata a
// federated coordinator needs to merge holdings across stations without
// moving payload bytes. Bytes is the chunk's audio payload length, the
// supersession tiebreak (longer copy wins).
type ChunkKey struct {
	Origin int32  `json:"origin"`
	Seq    uint32 `json:"seq"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
	Bytes  int64  `json:"bytes"`
}

// FileManifest is one file's chunk-key listing.
type FileManifest struct {
	ID     flash.FileID `json:"id"`
	Chunks []ChunkKey   `json:"chunks"`
}

// Manifest lists chunk keys per file from index metadata alone (no
// segment reads). A non-empty files set restricts to those IDs;
// otherwise every file is listed. Files are sorted by ID, chunks by
// (origin, seq). The from/to/origins filters mirror Query semantics:
// a file whose span overlaps [from,to) (both zero = unbounded) and
// whose origin set intersects origins (empty = any) is listed whole.
func (s *Store) Manifest(from, to sim.Time, origins map[int32]bool, files map[flash.FileID]bool) []FileManifest {
	var out []FileManifest
	bounded := from != 0 || to != 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, fm := range sh.files {
			if len(files) > 0 && !files[id] {
				continue
			}
			if bounded && (fm.end <= from || (to != 0 && fm.start >= to)) {
				continue
			}
			if len(origins) > 0 && !intersects(fm.origins, origins) {
				continue
			}
			m := FileManifest{ID: id, Chunks: make([]ChunkKey, 0, len(fm.chunks))}
			for _, c := range fm.chunks {
				m.Chunks = append(m.Chunks, ChunkKey{
					Origin: c.origin, Seq: c.seq,
					Start: int64(c.start), End: int64(c.end),
					Bytes: c.payloadBytes(),
				})
			}
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	for _, m := range out {
		sortChunkKeys(m.Chunks)
	}
	sortManifests(out)
	return out
}

func sortChunkKeys(cs []ChunkKey) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Origin != cs[j].Origin {
			return cs[i].Origin < cs[j].Origin
		}
		return cs[i].Seq < cs[j].Seq
	})
}

func sortManifests(ms []FileManifest) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
}

// GapsInSpans computes coverage gaps over a merged set of chunk keys at
// the given tolerance, with exactly the semantics of a single station's
// gap listing (time-major sort with (start, origin, seq) tiebreak,
// cursor sweep). The federation coordinator uses it so a merged view
// reports the same gaps a fully-replicated station would.
func GapsInSpans(spans []ChunkKey, tolerance time.Duration) []Gap {
	metas := make([]chunkMeta, len(spans))
	for i, s := range spans {
		metas[i] = chunkMeta{
			start: sim.Time(s.Start), end: sim.Time(s.End),
			origin: s.Origin, seq: s.Seq,
		}
	}
	return gapsIn(metas, tolerance)
}

// FileFrames re-encodes one archived file's chunks (parity siblings
// included if id has the parity bit) in wire framing — what
// GET /repl/file/{id} serves a federated /wav merge.
func (s *Store) FileFrames(id flash.FileID) ([]byte, error) {
	f, err := s.File(id)
	if err != nil {
		return nil, err
	}
	return EncodeFrames(f.Chunks)
}
