package archive

import (
	"sync/atomic"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// benchChunks builds n full-payload chunks spread over files files.
func benchChunks(n, files int) []*flash.Chunk {
	payload := make([]byte, flash.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	out := make([]*flash.Chunk, n)
	for i := 0; i < n; i++ {
		start := time.Duration(i) * 83 * time.Millisecond
		out[i] = &flash.Chunk{
			File:   flash.FileID(i%files + 1),
			Origin: int32(i % 20),
			Seq:    uint32(i),
			Start:  sim.At(start),
			End:    sim.At(start + 83*time.Millisecond),
			Data:   payload,
		}
	}
	return out
}

// BenchmarkArchiveIngest measures cold ingest throughput: 1000 fresh
// full-payload chunks per op into a per-iteration archive.
func BenchmarkArchiveIngest(b *testing.B) {
	chunks := benchChunks(1000, 16)
	b.SetBytes(int64(len(chunks)) * flash.PayloadSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(b.TempDir(), Options{Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Ingest(chunks); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkArchiveIngestDup measures the dedup fast path: re-ingesting
// an already-archived tour (every chunk a duplicate, no disk writes).
func BenchmarkArchiveIngestDup(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	chunks := benchChunks(1000, 16)
	if _, err := s.Ingest(chunks); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(chunks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveQuery measures an interval + origin query against a
// populated store (no disk reads: index only).
func BenchmarkArchiveQuery(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(benchChunks(5000, 200)); err != nil {
		b.Fatal(err)
	}
	origins := map[int32]bool{3: true, 7: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := sim.At(time.Duration(i%60) * time.Second)
		if got := s.Query(from, from.Add(30*time.Second), origins); len(got) == 0 && i == 0 {
			b.Fatal("query returned nothing")
		}
	}
}

// BenchmarkArchiveFile measures reassembly with a warm cache (the
// steady-state /files/{id}/wav path) vs cold (first touch after ingest).
func BenchmarkArchiveFile(b *testing.B) {
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			cache := int64(0) // default 16 MiB
			if mode == "cold" {
				cache = -1
			}
			s, err := Open(b.TempDir(), Options{Shards: 8, CacheBytes: cache})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Ingest(benchChunks(2000, 4)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.File(flash.FileID(i%4 + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArchiveIngestParallel measures concurrent durable ingest: many
// goroutines submitting batches at once, group-committed per shard with
// one fsync per group (the ≥1k-client HTTP load path in miniature).
func BenchmarkArchiveIngestParallel(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Shards: 8, SyncOnIngest: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, flash.PayloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	const perBatch = 100
	var ctr atomic.Uint32
	b.SetBytes(perBatch * flash.PayloadSize)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		chunks := make([]*flash.Chunk, perBatch)
		for pb.Next() {
			base := ctr.Add(1) * perBatch
			for i := range chunks {
				seq := base + uint32(i)
				start := time.Duration(seq) * 83 * time.Millisecond
				chunks[i] = &flash.Chunk{
					File:   flash.FileID(seq%16 + 1),
					Origin: int32(seq % 20),
					Seq:    seq,
					Start:  sim.At(start),
					End:    sim.At(start + 83*time.Millisecond),
					Data:   payload,
				}
			}
			if _, err := s.Ingest(chunks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkArchiveOpen measures open over a 5000-chunk archive with a
// warm index snapshot (the steady-state restart path; the close before
// the timed region checkpoints the indexes).
func BenchmarkArchiveOpen(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Ingest(benchChunks(5000, 50)); err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Chunks != 5000 {
			b.Fatalf("chunks = %d", st.Chunks)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkArchiveOpenRescan measures the same open forced down the full
// segment-scan rebuild (the no-snapshot fallback) for comparison with
// BenchmarkArchiveOpen.
func BenchmarkArchiveOpenRescan(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Ingest(benchChunks(5000, 50)); err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{NoSnapshots: true})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Chunks != 5000 {
			b.Fatalf("chunks = %d", st.Chunks)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}
