package archive

import (
	"sync"

	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
)

// flightGroup is a sharded singleflight for cold File() reassembly: a
// thundering herd of identical queries does the segment reads and
// reassembly once, with everyone sharing the result. Keys include the
// file's index version, so a request racing an ingest never latches onto
// a reassembly of the older version — it starts (or joins) a flight for
// its own version instead.
type flightGroup struct {
	buckets [16]flightBucket
}

type flightBucket struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

type flightKey struct {
	id      flash.FileID
	version uint64
}

type flightCall struct {
	done chan struct{}
	f    *retrieval.File
	err  error
}

func (g *flightGroup) bucket(k flightKey) *flightBucket {
	return &g.buckets[(uint32(k.id)^uint32(k.version))%uint32(len(g.buckets))]
}

// do runs fn once per in-flight key; concurrent callers with the same key
// wait and share the winner's result. The second return reports whether
// this caller shared another flight's result instead of running fn.
func (g *flightGroup) do(k flightKey, fn func() (*retrieval.File, error)) (*retrieval.File, error, bool) {
	b := g.bucket(k)
	b.mu.Lock()
	if b.m == nil {
		b.m = make(map[flightKey]*flightCall)
	}
	if c, ok := b.m[k]; ok {
		b.mu.Unlock()
		<-c.done
		return c.f, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	b.m[k] = c
	b.mu.Unlock()

	c.f, c.err = fn()
	close(c.done)

	b.mu.Lock()
	if b.m[k] == c {
		delete(b.m, k)
	}
	b.mu.Unlock()
	return c.f, c.err, false
}
