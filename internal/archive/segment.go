package archive

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"enviromic/internal/flash"
)

// Segment log framing. Each appended chunk becomes one frame:
//
//	[u32 payload length][u32 CRC-32 (IEEE) of payload][payload]
//
// where the payload is the chunk's compact record (flash.AppendRecord).
// Frames are self-validating, which is what makes recovery scan-based: on
// open every shard segment is walked front to back and the file is
// truncated at the first frame that is short, oversized, fails its CRC,
// or does not decode — everything before that point survives a torn
// write, everything after it was never acknowledged as durable.
const frameHeaderSize = 8

// appendFrame appends one framed chunk record to dst.
func appendFrame(dst []byte, c *flash.Chunk) ([]byte, error) {
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst, err := c.AppendRecord(dst)
	if err != nil {
		return dst[:start], err
	}
	payload := dst[start+frameHeaderSize:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// EncodeFrames encodes chunks in the archive's wire framing — the same
// bytes the segment log stores — for shipping to a remote archive's
// POST /ingest endpoint.
func EncodeFrames(chunks []*flash.Chunk) ([]byte, error) {
	var buf []byte
	for _, c := range chunks {
		var err error
		buf, err = appendFrame(buf, c)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFrames decodes a stream of framed chunk records (the EncodeFrames
// / segment-log format) until EOF. Unlike the recovery scan, any framing
// error here is returned to the caller: an ingest client sending a torn
// stream should hear about it rather than have the tail silently dropped.
func DecodeFrames(r io.Reader) ([]*flash.Chunk, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var out []*flash.Chunk
	var hdr [frameHeaderSize]byte
	payload := make([]byte, flash.MaxRecordSize)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("archive: truncated frame header: %w", err)
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < flash.MinRecordSize || n > flash.MaxRecordSize {
			return out, fmt.Errorf("archive: frame payload length %d out of range", n)
		}
		if _, err := io.ReadFull(br, payload[:n]); err != nil {
			return out, fmt.Errorf("archive: truncated frame payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload[:n]) != sum {
			return out, fmt.Errorf("archive: frame CRC mismatch")
		}
		c, consumed, err := flash.DecodeRecord(payload[:n])
		if err != nil || consumed != n {
			return out, fmt.Errorf("archive: undecodable frame: %v", err)
		}
		out = append(out, c)
	}
}

// scanSegment walks a segment file from byte offset `from`, invoking add
// for every valid frame with the chunk (ownership passes to add), the
// file offset of the frame payload, and the payload length. It returns
// the absolute offset covered by valid frames; anything past that is torn
// or corrupt and should be truncated away by the caller. A snapshot-backed
// open passes the snapshot's covered offset to replay only the tail; a
// full rebuild passes 0.
func scanSegment(f *os.File, from int64, add func(c *flash.Chunk, payloadOff int64, payloadLen int32)) (int64, error) {
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 256<<10)
	var (
		offset  = from
		hdr     [frameHeaderSize]byte
		payload = make([]byte, flash.MaxRecordSize)
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return offset, nil // clean EOF or torn header: stop here
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < flash.MinRecordSize || n > flash.MaxRecordSize {
			return offset, nil
		}
		if _, err := io.ReadFull(br, payload[:n]); err != nil {
			return offset, nil
		}
		if crc32.ChecksumIEEE(payload[:n]) != sum {
			return offset, nil
		}
		c, consumed, err := flash.DecodeRecord(payload[:n])
		if err != nil || consumed != n {
			return offset, nil
		}
		add(c, offset+frameHeaderSize, int32(n))
		offset += int64(frameHeaderSize + n)
	}
}
