// Package archive is the basestation's durable back end: a persistent,
// sharded on-disk chunk store with indexed reassembly and a concurrent
// query service.
//
// The paper's retrieval story hands chunks to a mule and stops; the
// archive is where those chunks land after the tour. It is organized as
// an append-only segment log per shard (files map to shards by ID), each
// frame CRC-framed and self-validating, so recovery after a torn write
// is a front-to-back scan that keeps everything before the first bad
// frame. All query-facing state — the by-file index, the by-origin index,
// and the interval index answering "files overlapping [t0,t1]" — lives in
// memory; on open it is loaded from a per-shard index snapshot plus a
// replay of the segment tail the snapshot doesn't cover (snapshot.go),
// falling back to a full segment scan when no usable snapshot exists.
// Segments are only read when a reassembly needs payload bytes, and
// reassembled files are held in an LRU cache invalidated (by version) on
// ingest, fronted by a singleflight so concurrent cold reads share one
// reassembly. Dead frames left behind by supersession are reclaimed by
// crash-safe segment compaction (compact.go).
//
// Concurrency: each shard has a writer goroutine that group-commits
// ingest submissions (pipeline.go); queries take shard read locks; the
// HTTP handler in http.go drives both from concurrent request goroutines.
// Everything is safe under `go test -race`.
package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
)

// ErrNotFound is returned for lookups of unknown file IDs.
var ErrNotFound = errors.New("archive: file not found")

// errClosed is returned by operations on a closed store.
var errClosed = errors.New("archive: store is closed")

// manifestName is the archive directory's manifest file.
const manifestName = "MANIFEST.json"

// manifestVersion is the on-disk format version this package writes.
const manifestVersion = 1

// Options configures Open. The zero value is usable: every field has a
// default.
type Options struct {
	// Shards is the shard (segment file) count for a newly created
	// archive; existing archives always use the manifest's count.
	// Default 8.
	Shards int
	// GapTolerance is the default gap tolerance for listings, ingest
	// deltas, and the HTTP API (per-request override via ?tolerance=).
	// Default 500ms, matching the retrieval demos.
	GapTolerance time.Duration
	// CacheBytes bounds the reassembly cache (approximate payload
	// bytes). Default 16 MiB; negative disables caching.
	CacheBytes int64
	// SyncOnIngest fsyncs the shard segment after every ingest group
	// commit. Off by default: the CRC framing already bounds loss to the
	// tail the kernel never flushed, which is the same guarantee the
	// paper's EEPROM checkpointing gives flash.
	SyncOnIngest bool
	// CheckpointBytes is how many bytes a shard appends between index
	// snapshot checkpoints. Default 8 MiB; negative disables periodic
	// checkpoints (Sync and Close still write one).
	CheckpointBytes int64
	// AutoCompactBytes is the per-shard superseded-byte threshold that
	// triggers background compaction. Default 64 MiB; negative disables
	// auto compaction (Compact can still be called).
	AutoCompactBytes int64
	// NoSnapshots disables index snapshots entirely — neither loaded on
	// open nor written. Open always rebuilds by scanning. For tests and
	// rescan benchmarks.
	NoSnapshots bool
	// Telemetry is the metrics registry the store publishes into
	// (counters, pipeline histograms, store-size gauges). Nil gives the
	// store a private registry, so Stats().Counters and Metrics() always
	// work; pass a shared registry to serve the store's series on a
	// /metrics endpoint alongside other subsystems.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.GapTolerance <= 0 {
		o.GapTolerance = 500 * time.Millisecond
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 16 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 8 << 20
	}
	if o.AutoCompactBytes == 0 {
		o.AutoCompactBytes = 64 << 20
	}
	return o
}

// manifest is the archive directory's geometry record. It is written
// atomically (temp file + rename) at creation, on Sync/Close, and when a
// compaction bumps a shard's generation; the committed sizes are advisory
// — recovery trusts the CRC scan, so a manifest older than the segments
// only means a longer scan, never data loss. Generations are not
// advisory: a snapshot whose generation disagrees with the manifest is
// from before a compaction and is discarded.
type manifest struct {
	Version     int      `json:"version"`
	Shards      int      `json:"shards"`
	Committed   []int64  `json:"committed,omitempty"`
	Generations []uint64 `json:"generations,omitempty"`
}

// FileInfo is one archived file's listing entry.
type FileInfo struct {
	ID      flash.FileID
	Start   sim.Time
	End     sim.Time
	Chunks  int
	Bytes   int64
	Origins []int32
	Gaps    int // at the store's default tolerance
}

// Gap is an uncovered stretch inside an archived file's span.
type Gap struct {
	Start, End sim.Time
}

// FileDelta reports how one ingest batch changed one file — in
// particular whether it closed (or revealed) coverage gaps, which is
// what the next mule tour's re-query is planned from.
type FileDelta struct {
	File              flash.FileID
	Added, Duplicates int
	// Superseded counts chunks whose fuller copy in this batch replaced
	// a shorter archived copy.
	Superseded    int
	GapsBefore    int
	GapsAfter     int
	GapSpanBefore time.Duration
	GapSpanAfter  time.Duration
}

// IngestReport summarizes one ingest batch.
type IngestReport struct {
	Added      int
	Duplicates int
	Superseded int
	Files      []FileDelta // sorted by file ID
}

// Requery returns the gap re-query a mule should flood on its next tour:
// the IDs of every touched file that still has gaps, widened to their
// parity siblings (retrieval.WithParity) so a dispersal-mode network
// also surrenders the fragments that can reconstruct the gap. It
// mirrors Mule.MissingFiles so the in-field and back-end gap paths
// agree.
func (r IngestReport) Requery() retrieval.Query {
	ids := make(map[flash.FileID]bool)
	for _, d := range r.Files {
		if d.GapsAfter > 0 && d.File&erasure.ParityFileBit == 0 {
			ids[d.File] = true
		}
	}
	return retrieval.WithParity(retrieval.Query{Files: ids})
}

// CacheStats snapshots the reassembly cache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats is the store-wide snapshot served at /stats.
type Stats struct {
	Shards          int              `json:"shards"`
	Files           int              `json:"files"`
	Chunks          int              `json:"chunks"`
	Bytes           int64            `json:"bytes"`            // payload bytes
	SegmentBytes    int64            `json:"segment_bytes"`    // on-disk bytes including framing
	RecoveredBytes  int64            `json:"recovered_bytes"`  // torn tail bytes dropped at open
	SupersededBytes int64            `json:"superseded_bytes"` // dead frame bytes reclaimable by compaction
	Cache           CacheStats       `json:"cache"`
	Counters        map[string]int64 `json:"counters"`
}

// Store is the persistent chunk archive. All methods are safe for
// concurrent use.
type Store struct {
	dir    string
	opts   Options
	shards []*shard
	cache  *fileCache
	flight flightGroup
	env    *shardEnv

	// closeMu serializes Close against in-flight operations: every
	// public mutator holds the read side for its duration, so by the
	// time Close holds the write side no submission or control send can
	// be in flight.
	closeMu sync.RWMutex
	closed  bool

	// manifestMu serializes manifest writes; gens/committed are the last
	// written values.
	manifestMu sync.Mutex
	gens       []uint64
	committed  []int64

	// reg is the telemetry registry every store counter lives in; legacy
	// maps each counter back to its historical dotted name, which is what
	// Stats().Counters (and the expvar shim in cmd/enviromic-archive)
	// still serve.
	reg         *telemetry.Registry
	legacy      []legacyCounter
	cBatches    *telemetry.Counter
	cIngested   *telemetry.Counter
	cDups       *telemetry.Counter
	cSuper      *telemetry.Counter
	cQueries    *telemetry.Counter
	cReads      *telemetry.Counter
	cCacheHit   *telemetry.Counter
	cCacheMiss  *telemetry.Counter
	cFlightWin  *telemetry.Counter
	cFlightJoin *telemetry.Counter
}

// legacyCounter pairs a telemetry counter with the dotted name the
// archive's original expvar counter group used.
type legacyCounter struct {
	name string
	c    *telemetry.Counter
}

// Open opens the archive at dir, creating it (and the directory) if
// absent. Opening loads each shard's index snapshot and replays only the
// segment tail appended after it (full scan when no usable snapshot
// exists), truncating torn tails left by a crash mid-append.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := loadOrCreateManifest(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	reg := opts.Telemetry
	if reg == nil {
		// A private registry keeps Stats().Counters and Metrics() working
		// for embedded stores that never mount /metrics.
		reg = telemetry.NewRegistry()
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		cache: newFileCache(opts.CacheBytes),
		reg:   reg,
	}
	// counter registers one store counter under its Prometheus name while
	// remembering the dotted name the original expvar counter group used —
	// Stats().Counters still serves the legacy names.
	counter := func(legacy, name, help string) *telemetry.Counter {
		c := reg.Counter(name, help)
		s.legacy = append(s.legacy, legacyCounter{name: legacy, c: c})
		return c
	}
	s.cBatches = counter("ingest.batches", "enviromic_archive_ingest_batches_total",
		"Ingest batches submitted to the store.")
	s.cIngested = counter("ingest.chunks", "enviromic_archive_ingest_chunks_total",
		"Chunks appended by ingest.")
	s.cDups = counter("ingest.duplicates", "enviromic_archive_ingest_duplicates_total",
		"Chunks skipped by ingest as duplicates.")
	s.cSuper = counter("ingest.superseded", "enviromic_archive_ingest_superseded_total",
		"Archived chunks replaced by longer copies.")
	s.cQueries = counter("query.count", "enviromic_archive_queries_total",
		"Interval-index queries served.")
	s.cReads = counter("file.reassemblies", "enviromic_archive_reassemblies_total",
		"File reassemblies performed (cache misses that did the work).")
	s.cCacheHit = counter("cache.hits", "enviromic_archive_cache_hits_total",
		"Reassembly cache hits.")
	s.cCacheMiss = counter("cache.misses", "enviromic_archive_cache_misses_total",
		"Reassembly cache misses.")
	s.cFlightWin = counter("flight.leads", "enviromic_archive_flight_leads_total",
		"Singleflight reassemblies led.")
	s.cFlightJoin = counter("flight.joins", "enviromic_archive_flight_joins_total",
		"Singleflight reassemblies coalesced onto a leader.")
	s.env = &shardEnv{
		gapTolerance:    opts.GapTolerance,
		syncOnIngest:    opts.SyncOnIngest,
		noSnapshots:     opts.NoSnapshots,
		checkpointBytes: opts.CheckpointBytes,
		autoCompact:     opts.AutoCompactBytes,
		cGroups: counter("ingest.groups", "enviromic_archive_group_commits_total",
			"Group commits performed by shard writers."),
		cGroupSyncs: counter("ingest.group_syncs", "enviromic_archive_group_syncs_total",
			"Group commits that fsynced the segment (SyncOnIngest)."),
		cSnapLoads: counter("open.snapshot_loads", "enviromic_archive_snapshot_loads_total",
			"Shards opened from an index snapshot."),
		cSnapFallbacks: counter("open.snapshot_fallbacks", "enviromic_archive_snapshot_fallbacks_total",
			"Shards whose snapshot was unusable, forcing a full scan."),
		cReplayed: counter("open.replayed_chunks", "enviromic_archive_replayed_chunks_total",
			"Chunks replayed from segment tails past their snapshots."),
		cCheckpoints: counter("checkpoint.writes", "enviromic_archive_checkpoint_writes_total",
			"Index snapshot checkpoints written."),
		cCheckpointBytes: counter("checkpoint.bytes", "enviromic_archive_checkpoint_bytes_total",
			"Bytes of index snapshots written."),
		cCompactions: counter("compact.runs", "enviromic_archive_compactions_total",
			"Segment compactions run."),
		cReclaimed: counter("compact.reclaimed_bytes", "enviromic_archive_compact_reclaimed_bytes_total",
			"Dead frame bytes reclaimed by compaction."),
		hGroupBatch: reg.Histogram("enviromic_archive_group_commit_batch_size",
			"Submissions absorbed per group commit.",
			telemetry.ExpBuckets(1, 2, 7)),
		hFsync: reg.Histogram("enviromic_archive_fsync_seconds",
			"Segment fsync latency during group commits.",
			telemetry.DurationBuckets()),
		hSnapLoad: reg.Histogram("enviromic_archive_open_snapshot_load_seconds",
			"Per-shard index snapshot load time at open.",
			telemetry.DurationBuckets()),
		hReplay: reg.Histogram("enviromic_archive_open_replay_seconds",
			"Per-shard segment scan time at open (tail replay or full scan).",
			telemetry.DurationBuckets()),
		bumpGen: s.bumpGen,
	}
	s.gens = make([]uint64, m.Shards)
	copy(s.gens, m.Generations)
	s.committed = make([]int64, m.Shards)
	copy(s.committed, m.Committed)
	for i := 0; i < m.Shards; i++ {
		sh, err := openShard(i, s.shardPath(i), s.gens[i], s.env)
		if err != nil {
			for _, prev := range s.shards {
				prev.closeFiles()
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		sh.startWriter()
	}
	s.registerGauges(reg)
	return s, nil
}

// registerGauges publishes scrape-time store totals: sizes straight off
// the shard indexes, and the reassembly cache's hit ratio as a proper
// gauge (the old expvar shim served it as a formatted string). When two
// stores share one registry the first store's functions win — mount
// shared registries one store per process.
func (s *Store) registerGauges(reg *telemetry.Registry) {
	total := func(pick func(Stats) float64) func() float64 {
		return func() float64 { return pick(s.totals()) }
	}
	reg.GaugeFunc("enviromic_archive_files", "Archived files.",
		total(func(st Stats) float64 { return float64(st.Files) }))
	reg.GaugeFunc("enviromic_archive_chunks", "Archived chunks.",
		total(func(st Stats) float64 { return float64(st.Chunks) }))
	reg.GaugeFunc("enviromic_archive_payload_bytes", "Archived payload bytes.",
		total(func(st Stats) float64 { return float64(st.Bytes) }))
	reg.GaugeFunc("enviromic_archive_segment_bytes", "On-disk segment bytes including framing.",
		total(func(st Stats) float64 { return float64(st.SegmentBytes) }))
	reg.GaugeFunc("enviromic_archive_superseded_bytes", "Dead frame bytes reclaimable by compaction.",
		total(func(st Stats) float64 { return float64(st.SupersededBytes) }))
	reg.GaugeFunc("enviromic_archive_cache_bytes", "Reassembly cache payload bytes held.",
		func() float64 { return float64(s.cache.stats().Bytes) })
	reg.GaugeFunc("enviromic_archive_cache_hit_ratio",
		"Reassembly cache hit ratio since open (0 when unused).",
		func() float64 {
			cs := s.cache.stats()
			if lookups := cs.Hits + cs.Misses; lookups > 0 {
				return float64(cs.Hits) / float64(lookups)
			}
			return 0
		})
}

// Metrics returns the store's telemetry registry — the one passed via
// Options.Telemetry, or the store-private default.
func (s *Store) Metrics() *telemetry.Registry { return s.reg }

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.seg", i))
}

// bumpGen records a new generation for one shard in the manifest,
// serialized against every other manifest write.
func (s *Store) bumpGen(id int, gen uint64) error {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	s.gens[id] = gen
	return writeManifest(s.dir, s.manifestLocked())
}

// manifestLocked builds the current manifest. Caller holds manifestMu.
func (s *Store) manifestLocked() manifest {
	m := manifest{Version: manifestVersion, Shards: len(s.gens)}
	m.Committed = append([]int64(nil), s.committed...)
	m.Generations = append([]uint64(nil), s.gens...)
	return m
}

// loadOrCreateManifest reads the manifest, or writes a fresh one if the
// directory has never held an archive. A directory with segment files
// but no manifest is refused: the shard count is not recoverable.
func loadOrCreateManifest(dir string, shards int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return manifest{}, fmt.Errorf("archive: corrupt manifest %s: %w", path, jerr)
		}
		if m.Version != manifestVersion {
			return manifest{}, fmt.Errorf("archive: manifest version %d not supported", m.Version)
		}
		if m.Shards <= 0 {
			return manifest{}, fmt.Errorf("archive: manifest declares %d shards", m.Shards)
		}
		return m, nil
	case os.IsNotExist(err):
		if segs, _ := filepath.Glob(filepath.Join(dir, "shard-*.seg")); len(segs) > 0 {
			return manifest{}, fmt.Errorf("archive: %s has segments but no manifest", dir)
		}
		m := manifest{Version: manifestVersion, Shards: shards}
		if werr := writeManifest(dir, m); werr != nil {
			return manifest{}, werr
		}
		return m, nil
	default:
		return manifest{}, err
	}
}

// writeManifest writes the manifest atomically (temp + rename), so a
// crash mid-write leaves either the old or the new manifest, never a
// torn one.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// shardIndex maps a file ID to its owning shard's index.
func (s *Store) shardIndex(id flash.FileID) int {
	return int(uint32(id) % uint32(len(s.shards)))
}

// shardFor maps a file ID to its owning shard.
func (s *Store) shardFor(id flash.FileID) *shard {
	return s.shards[s.shardIndex(id)]
}

// Ingest appends the batch's chunks, skipping duplicates (same
// file/origin/seq — migration copies, retransmissions, or a repeated
// tour) unless the copy carries a strictly longer payload, in which case
// it supersedes the archived one. Reports per-file gap deltas. The
// archive copies what it needs; the caller keeps ownership of the
// chunks. Concurrent Ingest calls are safe: the batch is submitted to
// every touched shard's writer at once, and each writer group-commits
// whatever submissions are queued with one write and at most one fsync.
func (s *Store) Ingest(chunks []*flash.Chunk) (IngestReport, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return IngestReport{}, errClosed
	}
	s.cBatches.Inc()
	byShard := make([][]*flash.Chunk, len(s.shards))
	for _, c := range chunks {
		if c == nil {
			continue
		}
		i := s.shardIndex(c.File)
		byShard[i] = append(byShard[i], c)
	}
	replies := make([]chan subResult, len(s.shards))
	for i, batch := range byShard {
		if len(batch) == 0 {
			continue
		}
		ch := make(chan subResult, 1)
		replies[i] = ch
		s.shards[i].subs <- &submission{chunks: batch, reply: ch}
	}
	var rep IngestReport
	var firstErr error
	for _, ch := range replies {
		if ch == nil {
			continue
		}
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		rep.Added += r.added
		rep.Duplicates += r.dups
		rep.Superseded += r.superseded
		rep.Files = append(rep.Files, r.deltas...)
		for _, d := range r.deltas {
			if d.Added > 0 || d.Superseded > 0 {
				s.cache.invalidate(d.File)
			}
		}
	}
	sort.Slice(rep.Files, func(i, j int) bool { return rep.Files[i].File < rep.Files[j].File })
	s.cIngested.Add(int64(rep.Added))
	s.cDups.Add(int64(rep.Duplicates))
	s.cSuper.Add(int64(rep.Superseded))
	return rep, firstErr
}

// Files lists every archived file, sorted by ID — a total order, so the
// listing is identical for any shard count.
func (s *Store) Files() []FileInfo {
	var out []FileInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, fm := range sh.files {
			out = append(out, sh.info(fm, s.opts.GapTolerance))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns one file's listing entry.
func (s *Store) Info(id flash.FileID) (FileInfo, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return FileInfo{}, ErrNotFound
	}
	return sh.info(fm, s.opts.GapTolerance), nil
}

// Query returns files overlapping [from,to) recorded (in part) by any of
// the given origins, using the per-shard interval indexes. from and to
// both zero means unbounded; empty origins means any origin. Results are
// sorted by (start, ID) — a total order, so the result is identical for
// any shard count.
func (s *Store) Query(from, to sim.Time, origins map[int32]bool) []FileInfo {
	s.cQueries.Inc()
	var out []FileInfo
	for _, sh := range s.shards {
		out = append(out, sh.query(from, to, origins, s.opts.GapTolerance)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Gaps returns the file's coverage gaps at the given tolerance
// (tolerance <= 0 uses the store default), computed from index metadata
// without touching segments.
func (s *Store) Gaps(id flash.FileID, tolerance time.Duration) ([]Gap, error) {
	if tolerance <= 0 {
		tolerance = s.opts.GapTolerance
	}
	gaps, ok := s.shardFor(id).gaps(id, tolerance)
	if !ok {
		return nil, ErrNotFound
	}
	return gaps, nil
}

// File reassembles one archived file: chunk payloads are read from the
// shard segment, deduplicated and time-sorted via retrieval.Reassemble,
// and the result cached until the next ingest touches the file.
// Concurrent cold requests for the same file and version share one
// reassembly (singleflight). The returned File is shared — callers must
// not mutate it.
func (s *Store) File(id flash.FileID) (*retrieval.File, error) {
	sh := s.shardFor(id)
	for attempt := 0; ; attempt++ {
		// Probe the cache on version alone before copying the chunk-meta
		// slice — the warm path never needs the offsets.
		v0, ok := sh.version(id)
		if !ok {
			return nil, ErrNotFound
		}
		if f, v, hit := s.cache.get(id); hit && v == v0 {
			s.cCacheHit.Inc()
			return f, nil
		}
		metas, version, epoch, ok := sh.fileChunks(id)
		if !ok {
			return nil, ErrNotFound
		}
		s.cCacheMiss.Inc()
		f, err, joined := s.flight.do(flightKey{id: id, version: version}, func() (*retrieval.File, error) {
			s.cReads.Inc()
			return s.reassemble(sh, id, version, metas, epoch)
		})
		if joined {
			s.cFlightJoin.Inc()
		} else {
			s.cFlightWin.Inc()
		}
		if errors.Is(err, errEpochChanged) {
			if attempt < 4 {
				continue // a compaction swapped the segment mid-read; refetch offsets
			}
			// Compactions keep invalidating the optimistic read. Fall back
			// to running it on the shard's writer goroutine: compaction
			// runs there too, so the offsets cannot be swapped between the
			// metadata fetch and the payload read. The result is validated
			// the same way (readChunks re-checks the epoch under the read
			// lock) — errEpochChanged never escapes to callers.
			return s.fileSerialized(sh, id)
		}
		return f, err
	}
}

// fileSerialized reassembles a file on the shard's writer goroutine,
// where no compaction can run concurrently. Slow path for reads racing
// a compaction storm.
func (s *Store) fileSerialized(sh *shard, id flash.FileID) (*retrieval.File, error) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, errClosed
	}
	var f *retrieval.File
	var err error
	sh.runCtl(func() {
		metas, version, epoch, ok := sh.fileChunks(id)
		if !ok {
			err = ErrNotFound
			return
		}
		if cached, v, hit := s.cache.get(id); hit && v == version {
			s.cCacheHit.Inc()
			f = cached
			return
		}
		s.cReads.Inc()
		f, err = s.reassemble(sh, id, version, metas, epoch)
	})
	return f, err
}

// FileErasure is File plus erasure decoding: when the archive also
// holds parity fragments of the file's dispersal groups (the sibling
// file id|erasure.ParityFileBit, collected by fragment-aware
// re-queries), any data chunk that fewer than n−k fragment losses took
// out is reconstructed and merged in. Without archived parity it
// degrades to exactly File.
func (s *Store) FileErasure(id flash.FileID) (*retrieval.File, retrieval.DecodeReport, error) {
	f, err := s.File(id)
	if err != nil {
		return nil, retrieval.DecodeReport{}, err
	}
	if id&erasure.ParityFileBit != 0 {
		return f, retrieval.DecodeReport{}, nil
	}
	pf, perr := s.File(id | erasure.ParityFileBit)
	if perr != nil {
		return f, retrieval.DecodeReport{}, nil // no parity archived
	}
	holdings := map[int][]*flash.Chunk{0: f.Chunks, 1: pf.Chunks}
	files, rep := retrieval.ReassembleErasure(holdings, retrieval.Query{Files: map[flash.FileID]bool{id: true}})
	if df := files[id]; df != nil {
		return df, rep, nil
	}
	return f, rep, nil
}

// reassemble reads the file's chunks and rebuilds it, caching the result.
func (s *Store) reassemble(sh *shard, id flash.FileID, version uint64, metas []chunkMeta, epoch uint64) (*retrieval.File, error) {
	chunks, err := sh.readChunks(metas, epoch)
	if err != nil {
		return nil, err
	}
	f := retrieval.Reassemble(map[int][]*flash.Chunk{0: chunks}, retrieval.Query{All: true})[id]
	if f == nil {
		return nil, ErrNotFound
	}
	s.cache.put(id, version, f)
	return f, nil
}

// GapTolerance returns the store's default gap tolerance.
func (s *Store) GapTolerance() time.Duration { return s.opts.GapTolerance }

// Stats snapshots store-wide totals and op counters. Counters keep their
// historical dotted names (the registry serves the same values under
// Prometheus names).
func (s *Store) Stats() Stats {
	st := s.totals()
	st.Counters = make(map[string]int64, len(s.legacy))
	for _, lc := range s.legacy {
		st.Counters[lc.name] = lc.c.Value()
	}
	st.Cache = s.cache.stats()
	return st
}

// totals sums the per-shard index sizes (no counters, no cache).
func (s *Store) totals() Stats {
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		files, chunks, bytes, seg, rec, super := sh.stats()
		st.Files += files
		st.Chunks += chunks
		st.Bytes += bytes
		st.SegmentBytes += seg
		st.RecoveredBytes += rec
		st.SupersededBytes += super
	}
	return st
}

// Sync flushes every shard segment to stable storage, checkpoints every
// shard's index snapshot, and records the committed sizes in the
// manifest.
func (s *Store) Sync() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return errClosed
	}
	var firstErr error
	for _, sh := range s.shards {
		sh.runCtl(func() {
			if err := sh.syncAndCheckpoint(); err != nil && firstErr == nil {
				firstErr = err
			}
			s.manifestMu.Lock()
			s.committed[sh.id] = sh.size
			s.manifestMu.Unlock()
		})
	}
	if firstErr != nil {
		return firstErr
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	return writeManifest(s.dir, s.manifestLocked())
}

// syncAndCheckpoint fsyncs the segment and writes a snapshot. Runs on
// the writer goroutine (or at close, after the writer exited).
func (sh *shard) syncAndCheckpoint() error {
	if err := sh.f.Sync(); err != nil {
		return err
	}
	return sh.writeSnapshot()
}

// Close drains every writer, writes final snapshots, syncs, records the
// manifest, and closes the segments. The store is unusable afterwards.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return errClosed
	}
	s.closed = true
	s.closeMu.Unlock()

	s.stopWriters()
	var firstErr error
	s.manifestMu.Lock()
	for _, sh := range s.shards {
		if err := sh.syncAndCheckpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.committed[sh.id] = sh.size
	}
	err := writeManifest(s.dir, s.manifestLocked())
	s.manifestMu.Unlock()
	if err != nil && firstErr == nil {
		firstErr = err
	}
	for _, sh := range s.shards {
		if cerr := sh.closeFiles(); cerr != nil && firstErr == nil {
			firstErr = cerr
		}
	}
	return firstErr
}

// stopWriters closes every shard's channels and waits for the writer
// goroutines to drain and exit.
func (s *Store) stopWriters() {
	for _, sh := range s.shards {
		close(sh.subs)
		close(sh.ctl)
	}
	for _, sh := range s.shards {
		sh.wg.Wait()
	}
}

// crashClose abandons the store without syncing, snapshotting, or
// writing the manifest — the closest a test can get to SIGKILL while
// sharing the process. Writers are stopped first so no append races the
// fd close.
func (s *Store) crashClose() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	s.stopWriters()
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.f != nil {
			sh.f.Close()
			sh.f = nil
		}
		sh.mu.Unlock()
	}
}
