// Package archive is the basestation's durable back end: a persistent,
// sharded on-disk chunk store with indexed reassembly and a concurrent
// query service.
//
// The paper's retrieval story hands chunks to a mule and stops; the
// archive is where those chunks land after the tour. It is organized as
// an append-only segment log per shard (files map to shards by ID), each
// frame CRC-framed and self-validating, so recovery after a torn write
// is a front-to-back scan that keeps everything before the first bad
// frame. All query-facing state — the by-file index, the by-origin index,
// and the interval index answering "files overlapping [t0,t1]" — lives in
// memory and is rebuilt from the segments on open; segments are only read
// when a reassembly needs payload bytes, and reassembled files are held
// in an LRU cache invalidated (by version) on ingest.
//
// Concurrency: ingest serializes per shard; queries take shard read
// locks; the HTTP handler in http.go drives both from concurrent request
// goroutines. Everything is safe under `go test -race`.
package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/obs"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

// ErrNotFound is returned for lookups of unknown file IDs.
var ErrNotFound = errors.New("archive: file not found")

// manifestName is the archive directory's manifest file.
const manifestName = "MANIFEST.json"

// manifestVersion is the on-disk format version this package writes.
const manifestVersion = 1

// Options configures Open. The zero value is usable: every field has a
// default.
type Options struct {
	// Shards is the shard (segment file) count for a newly created
	// archive; existing archives always use the manifest's count.
	// Default 8.
	Shards int
	// GapTolerance is the default gap tolerance for listings, ingest
	// deltas, and the HTTP API (per-request override via ?tolerance=).
	// Default 500ms, matching the retrieval demos.
	GapTolerance time.Duration
	// CacheBytes bounds the reassembly cache (approximate payload
	// bytes). Default 16 MiB; negative disables caching.
	CacheBytes int64
	// SyncOnIngest fsyncs the shard segment after every ingest batch.
	// Off by default: the CRC framing already bounds loss to the tail
	// the kernel never flushed, which is the same guarantee the paper's
	// EEPROM checkpointing gives flash.
	SyncOnIngest bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.GapTolerance <= 0 {
		o.GapTolerance = 500 * time.Millisecond
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 16 << 20
	}
	return o
}

// manifest is the archive directory's geometry record. It is written
// atomically (temp file + rename) at creation and on Sync/Close; the
// committed sizes are advisory — recovery trusts the CRC scan, so a
// manifest older than the segments only means a longer scan, never data
// loss.
type manifest struct {
	Version   int     `json:"version"`
	Shards    int     `json:"shards"`
	Committed []int64 `json:"committed,omitempty"`
}

// FileInfo is one archived file's listing entry.
type FileInfo struct {
	ID      flash.FileID
	Start   sim.Time
	End     sim.Time
	Chunks  int
	Bytes   int64
	Origins []int32
	Gaps    int // at the store's default tolerance
}

// Gap is an uncovered stretch inside an archived file's span.
type Gap struct {
	Start, End sim.Time
}

// FileDelta reports how one ingest batch changed one file — in
// particular whether it closed (or revealed) coverage gaps, which is
// what the next mule tour's re-query is planned from.
type FileDelta struct {
	File              flash.FileID
	Added, Duplicates int
	GapsBefore        int
	GapsAfter         int
	GapSpanBefore     time.Duration
	GapSpanAfter      time.Duration
}

// IngestReport summarizes one ingest batch.
type IngestReport struct {
	Added      int
	Duplicates int
	Files      []FileDelta // sorted by file ID
}

// Requery returns the gap re-query a mule should flood on its next tour:
// the IDs of every touched file that still has gaps. It mirrors
// Mule.MissingFiles so the in-field and back-end gap paths agree.
func (r IngestReport) Requery() retrieval.Query {
	ids := make(map[flash.FileID]bool)
	for _, d := range r.Files {
		if d.GapsAfter > 0 {
			ids[d.File] = true
		}
	}
	return retrieval.Query{Files: ids}
}

// CacheStats snapshots the reassembly cache.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats is the store-wide snapshot served at /stats.
type Stats struct {
	Shards         int              `json:"shards"`
	Files          int              `json:"files"`
	Chunks         int              `json:"chunks"`
	Bytes          int64            `json:"bytes"`           // payload bytes
	SegmentBytes   int64            `json:"segment_bytes"`   // on-disk bytes including framing
	RecoveredBytes int64            `json:"recovered_bytes"` // torn tail bytes dropped at open
	Cache          CacheStats       `json:"cache"`
	Counters       map[string]int64 `json:"counters"`
}

// Store is the persistent chunk archive. All methods are safe for
// concurrent use.
type Store struct {
	dir    string
	opts   Options
	shards []*shard
	cache  *fileCache

	counters   *obs.CounterGroup
	cBatches   *obs.Counter
	cIngested  *obs.Counter
	cDups      *obs.Counter
	cQueries   *obs.Counter
	cReads     *obs.Counter
	cCacheHit  *obs.Counter
	cCacheMiss *obs.Counter
}

// Open opens the archive at dir, creating it (and the directory) if
// absent. Opening scans every shard segment to rebuild the in-memory
// indexes and truncates torn tails left by a crash mid-append.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := loadOrCreateManifest(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		cache:    newFileCache(opts.CacheBytes),
		counters: obs.NewCounterGroup(),
	}
	s.cBatches = s.counters.Counter("ingest.batches")
	s.cIngested = s.counters.Counter("ingest.chunks")
	s.cDups = s.counters.Counter("ingest.duplicates")
	s.cQueries = s.counters.Counter("query.count")
	s.cReads = s.counters.Counter("file.reassemblies")
	s.cCacheHit = s.counters.Counter("cache.hits")
	s.cCacheMiss = s.counters.Counter("cache.misses")
	for i := 0; i < m.Shards; i++ {
		sh, err := openShard(i, s.shardPath(i))
		if err != nil {
			for _, prev := range s.shards {
				prev.close()
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.seg", i))
}

// loadOrCreateManifest reads the manifest, or writes a fresh one if the
// directory has never held an archive. A directory with segment files
// but no manifest is refused: the shard count is not recoverable.
func loadOrCreateManifest(dir string, shards int) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return manifest{}, fmt.Errorf("archive: corrupt manifest %s: %w", path, jerr)
		}
		if m.Version != manifestVersion {
			return manifest{}, fmt.Errorf("archive: manifest version %d not supported", m.Version)
		}
		if m.Shards <= 0 {
			return manifest{}, fmt.Errorf("archive: manifest declares %d shards", m.Shards)
		}
		return m, nil
	case os.IsNotExist(err):
		if segs, _ := filepath.Glob(filepath.Join(dir, "shard-*.seg")); len(segs) > 0 {
			return manifest{}, fmt.Errorf("archive: %s has segments but no manifest", dir)
		}
		m := manifest{Version: manifestVersion, Shards: shards}
		if werr := writeManifest(dir, m); werr != nil {
			return manifest{}, werr
		}
		return m, nil
	default:
		return manifest{}, err
	}
}

// writeManifest writes the manifest atomically (temp + rename), so a
// crash mid-write leaves either the old or the new manifest, never a
// torn one.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// shardFor maps a file ID to its owning shard.
func (s *Store) shardFor(id flash.FileID) *shard {
	return s.shards[int(uint32(id)%uint32(len(s.shards)))]
}

// Ingest appends the batch's chunks, skipping duplicates (same
// file/origin/seq — migration copies, retransmissions, or a repeated
// tour), and reports per-file gap deltas. The archive copies what it
// needs; the caller keeps ownership of the chunks. Concurrent Ingest
// calls are safe and serialize only per shard.
func (s *Store) Ingest(chunks []*flash.Chunk) (IngestReport, error) {
	s.cBatches.Inc()
	byShard := make(map[*shard][]*flash.Chunk)
	for _, c := range chunks {
		if c == nil {
			continue
		}
		sh := s.shardFor(c.File)
		byShard[sh] = append(byShard[sh], c)
	}
	var rep IngestReport
	// Deterministic shard order, so reports and error behavior don't
	// depend on map iteration.
	for _, sh := range s.shards {
		batch := byShard[sh]
		if len(batch) == 0 {
			continue
		}
		deltas, added, dups, err := sh.ingest(batch, s.opts.GapTolerance, s.opts.SyncOnIngest)
		if err != nil {
			return rep, err
		}
		rep.Added += added
		rep.Duplicates += dups
		rep.Files = append(rep.Files, deltas...)
		for _, d := range deltas {
			if d.Added > 0 {
				s.cache.invalidate(d.File)
			}
		}
	}
	sort.Slice(rep.Files, func(i, j int) bool { return rep.Files[i].File < rep.Files[j].File })
	s.cIngested.Add(int64(rep.Added))
	s.cDups.Add(int64(rep.Duplicates))
	return rep, nil
}

// Files lists every archived file, sorted by ID.
func (s *Store) Files() []FileInfo {
	var out []FileInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, fm := range sh.files {
			out = append(out, sh.info(fm, s.opts.GapTolerance))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns one file's listing entry.
func (s *Store) Info(id flash.FileID) (FileInfo, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return FileInfo{}, ErrNotFound
	}
	return sh.info(fm, s.opts.GapTolerance), nil
}

// Query returns files overlapping [from,to) recorded (in part) by any of
// the given origins, using the per-shard interval indexes. from and to
// both zero means unbounded; empty origins means any origin. Results are
// sorted by (start, ID).
func (s *Store) Query(from, to sim.Time, origins map[int32]bool) []FileInfo {
	s.cQueries.Inc()
	var out []FileInfo
	for _, sh := range s.shards {
		out = append(out, sh.query(from, to, origins, s.opts.GapTolerance)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Gaps returns the file's coverage gaps at the given tolerance
// (tolerance <= 0 uses the store default), computed from index metadata
// without touching segments.
func (s *Store) Gaps(id flash.FileID, tolerance time.Duration) ([]Gap, error) {
	if tolerance <= 0 {
		tolerance = s.opts.GapTolerance
	}
	gaps, ok := s.shardFor(id).gaps(id, tolerance)
	if !ok {
		return nil, ErrNotFound
	}
	return gaps, nil
}

// File reassembles one archived file: chunk payloads are read from the
// shard segment, deduplicated and time-sorted via retrieval.Reassemble,
// and the result cached until the next ingest touches the file. The
// returned File is shared — callers must not mutate it.
func (s *Store) File(id flash.FileID) (*retrieval.File, error) {
	sh := s.shardFor(id)
	metas, version, ok := sh.fileChunks(id)
	if !ok {
		return nil, ErrNotFound
	}
	if f, v, hit := s.cache.get(id); hit && v == version {
		s.cCacheHit.Inc()
		return f, nil
	}
	s.cCacheMiss.Inc()
	s.cReads.Inc()
	chunks := make([]*flash.Chunk, 0, len(metas))
	for _, m := range metas {
		c, err := sh.readChunk(m)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, c)
	}
	f := retrieval.Reassemble(map[int][]*flash.Chunk{0: chunks}, retrieval.Query{All: true})[id]
	if f == nil {
		return nil, ErrNotFound
	}
	s.cache.put(id, version, f)
	return f, nil
}

// GapTolerance returns the store's default gap tolerance.
func (s *Store) GapTolerance() time.Duration { return s.opts.GapTolerance }

// Stats snapshots store-wide totals and op counters.
func (s *Store) Stats() Stats {
	st := Stats{Shards: len(s.shards), Counters: s.counters.Snapshot()}
	for _, sh := range s.shards {
		files, chunks, bytes, seg, rec := sh.stats()
		st.Files += files
		st.Chunks += chunks
		st.Bytes += bytes
		st.SegmentBytes += seg
		st.RecoveredBytes += rec
	}
	st.Cache = s.cache.stats()
	return st
}

// Sync flushes every shard segment to stable storage and records the
// committed sizes in the manifest.
func (s *Store) Sync() error {
	m := manifest{Version: manifestVersion, Shards: len(s.shards)}
	for _, sh := range s.shards {
		n, err := sh.sync()
		if err != nil {
			return err
		}
		m.Committed = append(m.Committed, n)
	}
	return writeManifest(s.dir, m)
}

// Close syncs and closes every shard. The store is unusable afterwards.
func (s *Store) Close() error {
	err := s.Sync()
	for _, sh := range s.shards {
		if cerr := sh.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
