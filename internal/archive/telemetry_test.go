package archive

import (
	"net/http/httptest"
	"strings"
	"testing"

	"enviromic/internal/flash"
	"enviromic/internal/telemetry"
)

// TestTelemetryMirrorsLegacyCounters pins the counter port: every legacy
// dotted name in Stats().Counters is backed by a registry series with the
// same value, and the registry's exposition is valid and carries the
// archive families (including the cache-hit-ratio gauge that replaced the
// expvar shim's formatted string).
func TestTelemetryMirrorsLegacyCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), Options{Shards: 2, Telemetry: reg})
	defer s.Close()

	if s.Metrics() != reg {
		t.Fatalf("Metrics() did not return the injected registry")
	}

	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1),
		mkChunk(1, 3, 1, 1, 2),
		mkChunk(2, 4, 0, 10, 11),
	})
	if _, err := s.File(1); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := s.File(1); err != nil { // hit
		t.Fatal(err)
	}
	s.Query(0, 0, nil)

	// Legacy view and Prometheus view must agree series by series.
	want := map[string]string{
		"ingest.batches":    "enviromic_archive_ingest_batches_total",
		"ingest.chunks":     "enviromic_archive_ingest_chunks_total",
		"ingest.groups":     "enviromic_archive_group_commits_total",
		"query.count":       "enviromic_archive_queries_total",
		"cache.hits":        "enviromic_archive_cache_hits_total",
		"cache.misses":      "enviromic_archive_cache_misses_total",
		"file.reassemblies": "enviromic_archive_reassemblies_total",
	}
	counters := s.Stats().Counters
	for legacy, prom := range want {
		if got := reg.Counter(prom, "").Value(); got != counters[legacy] {
			t.Errorf("%s = %d, but %s = %d", prom, got, legacy, counters[legacy])
		}
	}
	if counters["ingest.chunks"] != 3 || counters["cache.hits"] != 1 || counters["cache.misses"] != 1 {
		t.Fatalf("unexpected counter values: %v", counters)
	}

	// The group-commit batch-size histogram saw the ingest.
	if got := reg.Histogram("enviromic_archive_group_commit_batch_size", "",
		telemetry.ExpBuckets(1, 2, 7)).Count(); got == 0 {
		t.Errorf("batch-size histogram recorded nothing")
	}

	// Exposition: parses, and carries totals plus the hit-ratio gauge.
	rec := httptest.NewRecorder()
	telemetry.Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	samples, err := telemetry.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, smp := range samples {
		byName[smp.Name] = smp.Value
	}
	if byName["enviromic_archive_files"] != 2 || byName["enviromic_archive_chunks"] != 3 {
		t.Errorf("store-size gauges wrong: files=%v chunks=%v",
			byName["enviromic_archive_files"], byName["enviromic_archive_chunks"])
	}
	if byName["enviromic_archive_cache_hit_ratio"] != 0.5 {
		t.Errorf("cache hit ratio = %v, want 0.5 after one hit one miss",
			byName["enviromic_archive_cache_hit_ratio"])
	}
}

// TestEndpointOf pins the route-pattern mapping the HTTP middleware uses.
func TestEndpointOf(t *testing.T) {
	cases := map[string]string{
		"/files":           "/files",
		"/files/12":        "/files/{id}",
		"/files/12/gaps":   "/files/{id}/gaps",
		"/files/12/wav":    "/files/{id}/wav",
		"/query":           "/query",
		"/ingest":          "/ingest",
		"/stats":           "/stats",
		"/metrics":         "/metrics",
		"/debug/pprof/":    "other",
		"/files2/whatever": "other",
	}
	for path, wantEP := range cases {
		r := httptest.NewRequest("GET", path, nil)
		if got := EndpointOf(r); got != wantEP {
			t.Errorf("EndpointOf(%s) = %q, want %q", path, got, wantEP)
		}
	}
}
