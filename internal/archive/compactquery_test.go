package archive

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// TestQueryConcurrentWithCompact is the regression test for reads
// racing compaction: queries, gap listings, and reassemblies whose
// intervals straddle compaction epochs must keep returning consistent
// results while Compact repeatedly swaps segments under them. Run with
// -race; before the epoch guard a reader could follow stale offsets
// into a freshly compacted segment.
func TestQueryConcurrentWithCompact(t *testing.T) {
	// CacheBytes<0 disables the reassembly cache so every File call
	// actually reads the segment, maximizing reads that straddle a swap.
	s := openTest(t, t.TempDir(), Options{Shards: 2, CacheBytes: -1, AutoCompactBytes: -1})
	defer s.Close()

	const files = 4
	const seqs = 8
	seed := make([]*flash.Chunk, 0, files*seqs)
	for f := flash.FileID(1); f <= files; f++ {
		for seq := uint32(0); seq < seqs; seq++ {
			seed = append(seed, mkChunk(f, int32(f), seq, float64(seq), float64(seq+1)))
		}
	}
	mustIngest(t, s, seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var compactions atomic.Int64

	// Superseder: keeps replacing chunks with strictly longer payloads
	// so every compaction pass has dead frames to reclaim and every
	// swap rewrites offsets.
	wg.Add(1)
	go func() {
		defer wg.Done()
		extra := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]*flash.Chunk, 0, files)
			for f := flash.FileID(1); f <= files; f++ {
				c := mkChunk(f, int32(f), uint32(extra%seqs), float64(extra%seqs), float64(extra%seqs+1))
				c.Data = append(c.Data, make([]byte, extra%200)...)
				batch = append(batch, c)
			}
			if _, err := s.Ingest(batch); err != nil {
				t.Errorf("Ingest: %v", err)
				return
			}
			extra++
		}
	}()

	// Compactor: swap segments as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
			compactions.Add(1)
		}
	}()

	// Readers: interval queries straddling the whole span, gap
	// listings, listings, and full reassemblies. Every result must stay
	// internally consistent; File must never surface an epoch error.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := sim.Time(int64(i%seqs) * int64(time.Second))
				to := from + sim.Time(3*time.Second)
				for _, fi := range s.Query(from, to, nil) {
					if fi.Chunks < seqs {
						t.Errorf("query saw file %d with %d chunks, want >= %d", fi.ID, fi.Chunks, seqs)
						return
					}
				}
				id := flash.FileID(r%files + 1)
				f, err := s.File(id)
				if err != nil {
					t.Errorf("File(%d): %v", id, err)
					return
				}
				if len(f.Chunks) < seqs {
					t.Errorf("File(%d) returned %d chunks, want >= %d", id, len(f.Chunks), seqs)
					return
				}
				if _, err := s.Gaps(id, 0); err != nil {
					t.Errorf("Gaps(%d): %v", id, err)
					return
				}
				if got := len(s.Files()); got != files {
					t.Errorf("Files() = %d entries, want %d", got, files)
					return
				}
			}
		}(r)
	}

	deadline := time.After(2 * time.Second)
	<-deadline
	close(stop)
	wg.Wait()
	if compactions.Load() == 0 {
		t.Fatalf("no compaction ran; test exercised nothing")
	}
}

// TestFileSerializedFallback exercises the slow path Store.File falls
// back to when compactions keep invalidating the optimistic read: the
// writer-goroutine read must return the same file and never leak the
// internal epoch error.
func TestFileSerializedFallback(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1, CacheBytes: -1})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 2, 0, 0, 1),
		mkChunk(1, 2, 1, 1, 2),
	})
	want, err := s.File(1)
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	got, err := s.fileSerialized(s.shardFor(1), 1)
	if err != nil {
		t.Fatalf("fileSerialized: %v", err)
	}
	if len(got.Chunks) != len(want.Chunks) {
		t.Fatalf("fileSerialized chunks = %d, want %d", len(got.Chunks), len(want.Chunks))
	}
	for i := range got.Chunks {
		if got.Chunks[i].Seq != want.Chunks[i].Seq || string(got.Chunks[i].Data) != string(want.Chunks[i].Data) {
			t.Fatalf("fileSerialized chunk %d differs from File", i)
		}
	}
	if _, err := s.fileSerialized(s.shardFor(99), 99); err != ErrNotFound {
		t.Fatalf("fileSerialized(unknown) err = %v, want ErrNotFound", err)
	}
}
