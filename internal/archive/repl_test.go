package archive

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"enviromic/internal/flash"
)

// pullAll replicates src into dst by pulling deltas of at most maxBytes
// until the lag reaches zero, returning how many pulls it took.
func pullAll(t *testing.T, src, dst *Store, cur ReplCursor, maxBytes int64) (ReplCursor, int) {
	t.Helper()
	pulls := 0
	for {
		frames, next, lag, err := src.Delta(cur, maxBytes)
		if err != nil {
			t.Fatalf("Delta: %v", err)
		}
		pulls++
		if len(frames) > 0 {
			chunks, err := DecodeFrames(bytes.NewReader(frames))
			if err != nil {
				t.Fatalf("DecodeFrames: %v", err)
			}
			if _, err := dst.Ingest(chunks); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
		cur = next
		if lag == 0 {
			return cur, pulls
		}
		if pulls > 10_000 {
			t.Fatalf("replication did not converge: lag %d after %d pulls", lag, pulls)
		}
	}
}

// assertSameHoldings fails unless both stores list identical files and
// chunk manifests.
func assertSameHoldings(t *testing.T, a, b *Store) {
	t.Helper()
	am := a.Manifest(0, 0, nil, nil)
	bm := b.Manifest(0, 0, nil, nil)
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("holdings differ:\n a=%+v\n b=%+v", am, bm)
	}
}

func TestDeltaReplicatesEverything(t *testing.T) {
	src := openTest(t, t.TempDir(), Options{Shards: 4})
	defer src.Close()
	dst := openTest(t, t.TempDir(), Options{Shards: 2}) // shard counts need not match
	defer dst.Close()

	var batch []*flash.Chunk
	for f := flash.FileID(1); f <= 5; f++ {
		for seq := uint32(0); seq < 20; seq++ {
			batch = append(batch, mkChunk(f, int32(f*10), seq, float64(seq), float64(seq+1)))
		}
	}
	mustIngest(t, src, batch)

	cur, _ := pullAll(t, src, dst, nil, 0)
	assertSameHoldings(t, src, dst)

	// Caught-up cursor matches the source's end-of-log status.
	if lag := src.ReplStatus().Lag(cur); lag != 0 {
		t.Fatalf("lag after catch-up = %d, want 0", lag)
	}

	// New ingest at the source: the delta resumes from the cursor and
	// ships only the new frames.
	mustIngest(t, src, []*flash.Chunk{mkChunk(9, 9, 0, 100, 101)})
	frames, next, lag, err := src.Delta(cur, 0)
	if err != nil {
		t.Fatalf("Delta: %v", err)
	}
	if lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}
	chunks, err := DecodeFrames(bytes.NewReader(frames))
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if len(chunks) != 1 || chunks[0].File != 9 {
		t.Fatalf("incremental delta = %v chunks, want the one new chunk", len(chunks))
	}
	mustIngest(t, dst, chunks)
	assertSameHoldings(t, src, dst)
	_ = next
}

func TestDeltaSmallBudgetStillProgresses(t *testing.T) {
	src := openTest(t, t.TempDir(), Options{Shards: 3})
	defer src.Close()
	dst := openTest(t, t.TempDir(), Options{Shards: 3})
	defer dst.Close()

	var batch []*flash.Chunk
	for seq := uint32(0); seq < 64; seq++ {
		batch = append(batch, mkChunk(flash.FileID(seq%7+1), 3, seq, float64(seq), float64(seq)+1))
	}
	mustIngest(t, src, batch)

	// A 1-byte budget is smaller than any frame; every pull must still
	// ship at least one frame per behind shard.
	_, pulls := pullAll(t, src, dst, nil, 1)
	if pulls < 2 {
		t.Fatalf("expected multiple pulls under a tiny budget, got %d", pulls)
	}
	assertSameHoldings(t, src, dst)
}

func TestDeltaCursorResetsAfterCompaction(t *testing.T) {
	src := openTest(t, t.TempDir(), Options{Shards: 1})
	defer src.Close()
	dst := openTest(t, t.TempDir(), Options{Shards: 1})
	defer dst.Close()

	short := mkChunk(1, 2, 7, 0, 1)
	mustIngest(t, src, []*flash.Chunk{short, mkChunk(1, 2, 8, 1, 2)})
	cur, _ := pullAll(t, src, dst, nil, 0)

	// Supersede one chunk with a longer copy, then compact: the shard's
	// generation bumps and the old cursor's offsets are meaningless.
	long := mkChunk(1, 2, 7, 0, 1)
	long.Data = append(long.Data, make([]byte, 64)...)
	mustIngest(t, src, []*flash.Chunk{long})
	if _, err := src.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := src.ReplStatus()
	if st.Shards[0].Gen == 0 {
		t.Fatalf("compaction did not bump the generation")
	}
	if lag := st.Lag(cur); lag != st.Shards[0].Size {
		t.Fatalf("stale-generation lag = %d, want the whole shard (%d)", lag, st.Shards[0].Size)
	}

	// Pulling from the stale cursor restarts the shard from zero; the
	// receiver's dedup absorbs the re-sent frames.
	cur, _ = pullAll(t, src, dst, cur, 0)
	assertSameHoldings(t, src, dst)
	f, err := dst.File(1)
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	for _, c := range f.Chunks {
		if c.Seq == 7 && len(c.Data) != len(long.Data) {
			t.Fatalf("superseding copy did not replicate: seq 7 has %d bytes, want %d", len(c.Data), len(long.Data))
		}
	}
	if lag := src.ReplStatus().Lag(cur); lag != 0 {
		t.Fatalf("lag after re-pull = %d, want 0", lag)
	}
}

func TestReplCursorStringRoundtrip(t *testing.T) {
	cur := ReplCursor{{Gen: 0, Off: 0}, {Gen: 3, Off: 4096}, {Gen: 1, Off: 7}}
	parsed, err := ParseReplCursor(cur.String())
	if err != nil {
		t.Fatalf("ParseReplCursor(%q): %v", cur.String(), err)
	}
	if !reflect.DeepEqual(parsed, cur) {
		t.Fatalf("roundtrip = %v, want %v", parsed, cur)
	}
	if c, err := ParseReplCursor(""); err != nil || c != nil {
		t.Fatalf("empty cursor = %v, %v; want nil, nil", c, err)
	}
	for _, bad := range []string{"x", "1:", ":2", "1:2:3", "1:-5", "a:b"} {
		if _, err := ParseReplCursor(bad); err == nil {
			t.Fatalf("ParseReplCursor(%q) accepted garbage", bad)
		}
	}
}

func TestManifestFilters(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 10, 0, 0, 1),
		mkChunk(1, 10, 1, 1, 2),
		mkChunk(2, 20, 0, 5, 6),
		mkChunk(3, 30, 0, 50, 51),
	})

	all := s.Manifest(0, 0, nil, nil)
	if len(all) != 3 || all[0].ID != 1 || len(all[0].Chunks) != 2 {
		t.Fatalf("full manifest wrong: %+v", all)
	}

	only2 := s.Manifest(0, 0, nil, map[flash.FileID]bool{2: true})
	if len(only2) != 1 || only2[0].ID != 2 {
		t.Fatalf("files filter wrong: %+v", only2)
	}

	// Window [4s, 10s) should keep only file 2.
	win := s.Manifest(4e9, 10e9, nil, nil)
	if len(win) != 1 || win[0].ID != 2 {
		t.Fatalf("window filter wrong: %+v", win)
	}

	// Origin filter.
	byOrigin := s.Manifest(0, 0, map[int32]bool{30: true}, nil)
	if len(byOrigin) != 1 || byOrigin[0].ID != 3 {
		t.Fatalf("origin filter wrong: %+v", byOrigin)
	}
}

func TestGapsInSpansMatchesStoreGaps(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 2, 0, 0, 1),
		mkChunk(1, 2, 1, 1, 2),
		mkChunk(1, 3, 5, 4, 5), // gap (2,4)
		mkChunk(1, 3, 6, 5, 6),
	})
	tol := 500 * time.Millisecond
	want, err := s.Gaps(1, tol)
	if err != nil {
		t.Fatalf("Gaps: %v", err)
	}
	m := s.Manifest(0, 0, nil, map[flash.FileID]bool{1: true})
	got := GapsInSpans(m[0].Chunks, tol)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GapsInSpans = %v, want %v", got, want)
	}
}

func TestFileFrames(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(4, 2, 0, 0, 1), mkChunk(4, 2, 1, 1, 2)})
	frames, err := s.FileFrames(4)
	if err != nil {
		t.Fatalf("FileFrames: %v", err)
	}
	chunks, err := DecodeFrames(bytes.NewReader(frames))
	if err != nil {
		t.Fatalf("DecodeFrames: %v", err)
	}
	if len(chunks) != 2 || chunks[0].File != 4 {
		t.Fatalf("frames decode to %d chunks, want 2", len(chunks))
	}
	if _, err := s.FileFrames(99); err != ErrNotFound {
		t.Fatalf("FileFrames(unknown) err = %v, want ErrNotFound", err)
	}
}
