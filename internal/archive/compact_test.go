package archive

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/retrieval"
	"enviromic/internal/sim"
)

// supersedeWorkload ingests a dup-heavy stream: every chunk arrives
// first as a short partial copy, then again with the full payload (a
// later tour reaching the mote with better coverage). Returns the store's
// expected live chunk count.
func supersedeWorkload(t *testing.T, s *Store, files, perFile int) int {
	t.Helper()
	var partial, full []*flash.Chunk
	for f := 1; f <= files; f++ {
		for i := 0; i < perFile; i++ {
			partial = append(partial, mkChunkN(flash.FileID(f), 3, uint32(i), float64(i), float64(i+1), 10))
			full = append(full, mkChunkN(flash.FileID(f), 3, uint32(i), float64(i), float64(i+1), 100))
		}
	}
	rep := mustIngest(t, s, partial)
	if rep.Added != files*perFile {
		t.Fatalf("partial pass: %+v", rep)
	}
	rep = mustIngest(t, s, full)
	if rep.Added != 0 || rep.Superseded != files*perFile {
		t.Fatalf("full pass: %+v, want %d superseded", rep, files*perFile)
	}
	// A third pass of the short copies must be pure duplicates.
	rep = mustIngest(t, s, partial)
	if rep.Added != 0 || rep.Superseded != 0 || rep.Duplicates != files*perFile {
		t.Fatalf("re-ingest of partials: %+v, want all duplicates", rep)
	}
	return files * perFile
}

// TestSupersedeReplacesPartialChunk: the archive must keep the fullest
// copy of a chunk, whichever order the copies arrive in.
func TestSupersedeReplacesPartialChunk(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunkN(1, 3, 0, 0, 1, 10)})
	mustIngest(t, s, []*flash.Chunk{mkChunkN(1, 3, 0, 0, 1, 100)}) // fuller copy
	mustIngest(t, s, []*flash.Chunk{mkChunkN(1, 3, 0, 0, 1, 50)})  // late partial: dropped

	f, err := s.File(1)
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	if len(f.Chunks) != 1 || len(f.Chunks[0].Data) != 100 {
		t.Fatalf("kept %d chunks, payload %d bytes; want 1 chunk of 100",
			len(f.Chunks), len(f.Chunks[0].Data))
	}
	want := mkChunkN(1, 3, 0, 0, 1, 100).Data
	if !bytes.Equal(f.Chunks[0].Data, want) {
		t.Fatalf("payload mismatch after supersession")
	}
	st := s.Stats()
	if st.Chunks != 1 || st.SupersededBytes == 0 {
		t.Fatalf("stats = %+v, want 1 chunk with superseded bytes", st)
	}
}

// TestCompactReclaimsAllSupersededBytes: compaction must reclaim exactly
// the tracked dead bytes and change nothing query-visible.
func TestCompactReclaimsAllSupersededBytes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 2})
	defer s.Close()
	live := supersedeWorkload(t, s, 6, 20)

	before := s.Stats()
	if before.SupersededBytes == 0 {
		t.Fatalf("workload left no superseded bytes")
	}
	want := storeFingerprint(t, s)

	rep, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rep.ReclaimedBytes != before.SupersededBytes {
		t.Fatalf("reclaimed %d bytes, want %d (100%%)", rep.ReclaimedBytes, before.SupersededBytes)
	}
	if rep.ChunksKept != live {
		t.Fatalf("kept %d chunks, want %d", rep.ChunksKept, live)
	}
	after := s.Stats()
	if after.SupersededBytes != 0 {
		t.Fatalf("superseded bytes after compaction = %d, want 0", after.SupersededBytes)
	}
	if after.SegmentBytes != before.SegmentBytes-rep.ReclaimedBytes {
		t.Fatalf("segment bytes %d, want %d - %d", after.SegmentBytes, before.SegmentBytes, rep.ReclaimedBytes)
	}
	if got := storeFingerprint(t, s); got != want {
		t.Fatalf("compaction changed query-visible state")
	}
	// A second pass must be a no-op.
	rep2, err := s.Compact()
	if err != nil || rep2.ReclaimedBytes != 0 || rep2.Shards != 0 {
		t.Fatalf("second compaction: %+v, %v; want no-op", rep2, err)
	}
}

// TestCompactSurvivesReopen: the compacted segment plus its fresh
// snapshot must reopen to the same state, and so must a scan rebuild.
func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 2})
	supersedeWorkload(t, s, 4, 15)
	if _, err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	want := storeFingerprint(t, s)
	s.Close()

	for _, opts := range []Options{{}, {NoSnapshots: true}} {
		s2 := openTest(t, dir, opts)
		if got := storeFingerprint(t, s2); got != want {
			t.Fatalf("reopen (opts %+v) differs from pre-close state", opts)
		}
		if st := s2.Stats(); st.SupersededBytes != 0 {
			t.Fatalf("reopen sees %d superseded bytes in a compacted segment", st.SupersededBytes)
		}
		s2.crashClose()
	}
}

// TestCrashMidCompaction kills the compactor at every protocol boundary;
// the reopened store must be byte-identical to a never-compacted
// reference store fed the same workload.
func TestCrashMidCompaction(t *testing.T) {
	refDir := t.TempDir()
	ref := openTest(t, refDir, Options{Shards: 2})
	defer ref.Close()
	supersedeWorkload(t, ref, 5, 12)
	want := storeFingerprint(t, ref)

	points := []string{"temp-written", "temp-synced", "idx-removed", "gen-bumped", "seg-renamed"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{Shards: 2})
			supersedeWorkload(t, s, 5, 12)
			killed := fmt.Errorf("killed at %s", point)
			s.env.compactHook = func(shard int, p string) error {
				if p == point {
					return killed
				}
				return nil
			}
			if _, err := s.Compact(); err == nil {
				t.Fatalf("Compact survived the injected kill at %s", point)
			}
			s.crashClose()

			s2 := openTest(t, dir, Options{})
			defer s2.Close()
			if got := storeFingerprint(t, s2); got != want {
				t.Fatalf("store after crash at %s differs from never-compacted reference", point)
			}
		})
	}
}

// TestCompactionBreaksCheckpointsAfterLateFailure: once a compaction
// fails past the point of commitment the process must stop writing
// snapshots — it no longer knows what a reopen will find.
func TestCompactionBreaksCheckpointsAfterLateFailure(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1})
	defer s.Close()
	supersedeWorkload(t, s, 2, 6)
	s.env.compactHook = func(shard int, p string) error {
		if p == "gen-bumped" {
			return fmt.Errorf("killed")
		}
		return nil
	}
	if _, err := s.Compact(); err == nil {
		t.Fatalf("Compact survived the injected kill")
	}
	if !s.shards[0].checkpointsBroken {
		t.Fatalf("late compaction failure did not break checkpoints")
	}
	before := s.Stats().Counters["checkpoint.writes"]
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if after := s.Stats().Counters["checkpoint.writes"]; after != before {
		t.Fatalf("broken shard still wrote a checkpoint")
	}
}

// TestAutoCompaction: crossing AutoCompactBytes triggers compaction from
// the writer goroutine without any explicit call.
func TestAutoCompaction(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1, AutoCompactBytes: 1 << 10})
	defer s.Close()
	supersedeWorkload(t, s, 2, 20) // ~40 dead frames ≫ 1 KiB
	st := s.Stats()
	if st.Counters["compact.runs"] == 0 {
		t.Fatalf("no auto compaction ran; superseded=%d", st.SupersededBytes)
	}
	if st.SupersededBytes != 0 {
		t.Fatalf("superseded bytes after auto compaction = %d", st.SupersededBytes)
	}
}

// TestFilesAndQueryDeterministicAcrossShardCounts: listings and query
// results must not depend on the shard layout.
func TestFilesAndQueryDeterministicAcrossShardCounts(t *testing.T) {
	chunks := seedChunks(23, 7)
	var refFiles []FileInfo
	var refQuery []FileInfo
	for i, shards := range []int{1, 2, 3, 8, 16} {
		s := openTest(t, t.TempDir(), Options{Shards: shards})
		mustIngest(t, s, chunks)
		files := s.Files()
		query := s.Query(sim.Time(2500*int64(time.Millisecond)), sim.Time(5500*int64(time.Millisecond)), nil)
		s.Close()
		if i == 0 {
			refFiles, refQuery = files, query
			continue
		}
		if !reflect.DeepEqual(files, refFiles) {
			t.Fatalf("Files() with %d shards differs from 1 shard", shards)
		}
		if !reflect.DeepEqual(query, refQuery) {
			t.Fatalf("Query() with %d shards differs from 1 shard", shards)
		}
	}
}

// TestCompactHTTPEndpoint: POST /compact reclaims and reports.
func TestCompactHTTPEndpoint(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1})
	defer s.Close()
	supersedeWorkload(t, s, 2, 5)
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /compact: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /compact status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "reclaimed_bytes") {
		t.Fatalf("compact response missing reclaimed_bytes: %s", buf.String())
	}
	if s.Stats().SupersededBytes != 0 {
		t.Fatalf("HTTP compact left superseded bytes")
	}
}

// TestFlightSharesConcurrentReassembly: concurrent cold File() calls for
// one (file, version) must share a single reassembly.
func TestFlightSharesConcurrentReassembly(t *testing.T) {
	var g flightGroup
	key := flightKey{id: 7, version: 3}
	release := make(chan struct{})
	started := make(chan struct{})
	leader := make(chan *retrieval.File)
	go func() {
		f, _, joined := g.do(key, func() (*retrieval.File, error) {
			close(started)
			<-release
			return &retrieval.File{ID: 7}, nil
		})
		if joined {
			t.Error("leader reported joined")
		}
		leader <- f
	}()
	<-started // the flight is now in the map and stays until release

	const n = 15
	results := make([]*retrieval.File, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err, joined := g.do(key, func() (*retrieval.File, error) {
				t.Error("a waiter ran the function itself")
				return nil, nil
			})
			if err != nil || !joined {
				t.Errorf("waiter %d: err=%v joined=%v", i, err, joined)
			}
			results[i] = f
		}(i)
	}
	// Let the waiters park on the in-flight call before releasing it; a
	// straggler arriving after release would run fn and trip the Error.
	time.Sleep(50 * time.Millisecond)
	close(release)
	lf := <-leader
	wg.Wait()
	for i := 0; i < n; i++ {
		if results[i] != lf {
			t.Fatalf("waiter %d got a different file pointer", i)
		}
	}
}

// TestFlightHerdOnStore: a herd of goroutines hitting the same cold file
// does the segment reads once (plus at most one per late-arriving wave).
func TestFlightHerdOnStore(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1, CacheBytes: -1})
	defer s.Close()
	mustIngest(t, s, seedChunks(1, 50))

	const n = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.File(1); err != nil {
				t.Errorf("File: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	c := s.Stats().Counters
	if c["flight.leads"]+c["flight.joins"] != n {
		t.Fatalf("leads %d + joins %d != %d", c["flight.leads"], c["flight.joins"], n)
	}
	if c["file.reassemblies"] != c["flight.leads"] {
		t.Fatalf("reassemblies %d != flight leads %d", c["file.reassemblies"], c["flight.leads"])
	}
	if c["flight.leads"] == n {
		t.Logf("herd fully serialized (no joins); timing-dependent, not failing")
	}
}
