package archive

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/wav"
)

// newTestServer builds a store with two files (file 1 gapped, file 2
// contiguous) behind the HTTP handler.
func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1),
		mkChunk(1, 3, 1, 1, 2),
		mkChunk(1, 3, 3, 3, 4), // hole at [2s,3s)
		mkChunk(2, 4, 0, 10, 11),
		mkChunk(2, 5, 1, 11, 12),
	})
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { s.Close() })
	return s, srv
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp
}

func TestHTTPFilesAndFile(t *testing.T) {
	_, srv := newTestServer(t)

	var files []FileInfoJSON
	if resp := getJSON(t, srv.URL+"/files", &files); resp.StatusCode != 200 {
		t.Fatalf("/files status %d", resp.StatusCode)
	}
	if len(files) != 2 || files[0].ID != 1 || files[1].ID != 2 {
		t.Fatalf("/files = %+v", files)
	}
	if files[0].Gaps != 1 || files[1].Gaps != 0 {
		t.Fatalf("gap counts = %d,%d", files[0].Gaps, files[1].Gaps)
	}

	var one struct {
		FileInfoJSON
		DurationSec float64 `json:"duration_s"`
		ChunkList   []struct {
			Origin int32  `json:"origin"`
			Seq    uint32 `json:"seq"`
		} `json:"chunk_list"`
	}
	if resp := getJSON(t, srv.URL+"/files/2", &one); resp.StatusCode != 200 {
		t.Fatalf("/files/2 status %d", resp.StatusCode)
	}
	if len(one.ChunkList) != 2 || one.ChunkList[0].Origin != 4 || one.ChunkList[1].Origin != 5 {
		t.Fatalf("/files/2 chunks = %+v", one.ChunkList)
	}

	if resp := getJSON(t, srv.URL+"/files/99", nil); resp.StatusCode != 404 {
		t.Fatalf("/files/99 status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/files/bogus", nil); resp.StatusCode != 400 {
		t.Fatalf("/files/bogus status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPGapsAndTolerance(t *testing.T) {
	_, srv := newTestServer(t)
	var out struct {
		File         flash.FileID   `json:"file"`
		Gaps         []gapJSON      `json:"gaps"`
		RequeryFiles []flash.FileID `json:"requery_files"`
	}
	getJSON(t, srv.URL+"/files/1/gaps", &out)
	if len(out.Gaps) != 1 || out.Gaps[0].StartSec != 2 || out.Gaps[0].EndSec != 3 {
		t.Fatalf("gaps = %+v", out.Gaps)
	}
	if len(out.RequeryFiles) != 2 || out.RequeryFiles[0] != 1 ||
		out.RequeryFiles[1] != 1|erasure.ParityFileBit {
		t.Fatalf("requery = %v, want file 1 plus its parity sibling", out.RequeryFiles)
	}
	// A tolerance wider than the hole reports no gaps.
	getJSON(t, srv.URL+"/files/1/gaps?tolerance=2s", &out)
	if len(out.Gaps) != 0 || len(out.RequeryFiles) != 0 {
		t.Fatalf("wide tolerance gaps = %+v requery = %v", out.Gaps, out.RequeryFiles)
	}
	if resp := getJSON(t, srv.URL+"/files/1/gaps?tolerance=nope", nil); resp.StatusCode != 400 {
		t.Fatalf("bad tolerance status %d", resp.StatusCode)
	}
}

func TestHTTPWav(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/files/1/wav")
	if err != nil {
		t.Fatalf("GET wav: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("wav status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "audio/wav" {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples, rate, err := wav.Read(resp.Body)
	if err != nil {
		t.Fatalf("decoding wav: %v", err)
	}
	if rate != 2730 {
		t.Fatalf("rate = %d", rate)
	}
	// File 1 spans 4s; at 2730 Hz that is ~10920 samples.
	if len(samples) < 10000 || len(samples) > 12000 {
		t.Fatalf("samples = %d, want ~10920", len(samples))
	}
}

func TestHTTPQuery(t *testing.T) {
	_, srv := newTestServer(t)
	var files []FileInfoJSON
	getJSON(t, srv.URL+"/query?from=9s&to=30s", &files)
	if len(files) != 1 || files[0].ID != 2 {
		t.Fatalf("time query = %+v", files)
	}
	getJSON(t, srv.URL+"/query?origins=3", &files)
	if len(files) != 1 || files[0].ID != 1 {
		t.Fatalf("origin query = %+v", files)
	}
	getJSON(t, srv.URL+"/query?from=0.5&to=1.5&origins=3,4", &files)
	if len(files) != 1 || files[0].ID != 1 {
		t.Fatalf("combined query = %+v", files)
	}
	getJSON(t, srv.URL+"/query", &files)
	if len(files) != 2 {
		t.Fatalf("unbounded query = %+v", files)
	}
	if resp := getJSON(t, srv.URL+"/query?from=xyz", nil); resp.StatusCode != 400 {
		t.Fatalf("bad from status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/query?origins=a", nil); resp.StatusCode != 400 {
		t.Fatalf("bad origins status %d", resp.StatusCode)
	}
}

func TestHTTPIngest(t *testing.T) {
	s, srv := newTestServer(t)

	// Ship the missing chunk (fills file 1's hole) plus one duplicate.
	frames, err := EncodeFrames([]*flash.Chunk{
		mkChunk(1, 3, 2, 2, 3),
		mkChunk(1, 3, 0, 0, 1), // dup
	})
	if err != nil {
		t.Fatalf("EncodeFrames: %v", err)
	}
	resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Added      int `json:"added"`
		Duplicates int `json:"duplicates"`
		Files      []struct {
			File       flash.FileID `json:"file"`
			GapsBefore int          `json:"gaps_before"`
			GapsAfter  int          `json:"gaps_after"`
		} `json:"files"`
		Requery []flash.FileID `json:"requery_files"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if rep.Added != 1 || rep.Duplicates != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Files) != 1 || rep.Files[0].GapsBefore != 1 || rep.Files[0].GapsAfter != 0 {
		t.Fatalf("deltas = %+v", rep.Files)
	}
	if len(rep.Requery) != 0 {
		t.Fatalf("requery = %v, want empty (gap filled)", rep.Requery)
	}
	if fi, _ := s.Info(1); fi.Chunks != 4 || fi.Gaps != 0 {
		t.Fatalf("file 1 after HTTP ingest: %+v", fi)
	}

	// A torn stream is rejected.
	resp2, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(frames[:len(frames)-3]))
	if err != nil {
		t.Fatalf("POST torn: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("torn ingest status %d, want 400", resp2.StatusCode)
	}
}

func TestHTTPStats(t *testing.T) {
	_, srv := newTestServer(t)
	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	if st.Files != 2 || st.Chunks != 5 || st.Shards != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Counters["ingest.chunks"] != 5 {
		t.Fatalf("counters = %v", st.Counters)
	}
}

func TestEncodeDecodeFramesRoundTrip(t *testing.T) {
	var chunks []*flash.Chunk
	for i := 0; i < 20; i++ {
		c := mkChunk(flash.FileID(i%3+1), int32(i%5), uint32(i), float64(i), float64(i)+0.5)
		c.Data = bytes.Repeat([]byte{byte(i)}, i*7%flash.PayloadSize)
		chunks = append(chunks, c)
	}
	frames, err := EncodeFrames(chunks)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeFrames(bytes.NewReader(frames))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(chunks) {
		t.Fatalf("decoded %d chunks, want %d", len(got), len(chunks))
	}
	for i := range got {
		if got[i].File != chunks[i].File || got[i].Seq != chunks[i].Seq ||
			got[i].Start != chunks[i].Start || !bytes.Equal(got[i].Data, chunks[i].Data) {
			t.Fatalf("chunk %d mismatch: %+v vs %+v", i, got[i], chunks[i])
		}
	}
	// Corrupt one payload byte: decode must fail loudly.
	bad := bytes.Clone(frames)
	bad[frameHeaderSize+10] ^= 1
	if _, err := DecodeFrames(bytes.NewReader(bad)); err == nil {
		t.Fatalf("corrupt frame stream decoded without error")
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/files", "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatalf("POST /files: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /files status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatalf("GET /ingest: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d, want 405", resp.StatusCode)
	}
}
