package archive

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"enviromic/internal/flash"
)

// TestArchiveSoakIngestQueryCompact races every moving part at once:
// concurrent ingest (with supersession), listings, interval queries,
// cold+warm reassembly, explicit compaction, Sync checkpoints, and
// aggressive auto checkpoint/compact thresholds — the configuration
// `make check` runs under -race. Afterwards the store must hold exactly
// the fullest copy of every chunk, and survive a reopen.
func TestArchiveSoakIngestQueryCompact(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		Shards:           4,
		CheckpointBytes:  8 << 10,
		AutoCompactBytes: 8 << 10,
		SyncOnIngest:     true, // exercise group-commit fsync batching
	})

	const (
		writers      = 6
		files        = 9
		seqsPerRound = 8
		rounds       = 12
	)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	// Writers: each round ingests every (file, seq) twice — short copy
	// then full copy — so dedup, supersession, and group commits all fire
	// under contention. Writers share keys: the same stream lands from
	// several writers at once, like overlapping mule tours.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < rounds; r++ {
				var short, full []*flash.Chunk
				for f := 1; f <= files; f++ {
					for i := 0; i < seqsPerRound; i++ {
						seq := uint32(r*seqsPerRound + i)
						sec := float64(seq)
						short = append(short, mkChunkN(flash.FileID(f), 3, seq, sec, sec+1, 10))
						full = append(full, mkChunkN(flash.FileID(f), 3, seq, sec, sec+1, 80))
					}
				}
				if _, err := s.Ingest(short); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if _, err := s.Ingest(full); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: hammer every query path until the writers finish.
	var reads atomic.Int64
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Files()
				s.Query(0, 0, map[int32]bool{3: true})
				id := flash.FileID(g%files + 1)
				if _, err := s.File(id); err != nil && err != ErrNotFound {
					t.Errorf("reader %d: File(%d): %v", g, id, err)
					return
				}
				s.Stats()
				reads.Add(1)
			}
		}(g)
	}

	// Maintenance: explicit compactions and Syncs racing the auto paths.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
			if err := s.Sync(); err != nil {
				t.Errorf("Sync: %v", err)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// Verify: every chunk present exactly once, with the full payload.
	verify := func(s *Store, label string) {
		st := s.Stats()
		want := files * seqsPerRound * rounds
		if st.Chunks != want {
			t.Fatalf("%s: %d chunks, want %d", label, st.Chunks, want)
		}
		for f := 1; f <= files; f++ {
			file, err := s.File(flash.FileID(f))
			if err != nil {
				t.Fatalf("%s: File(%d): %v", label, f, err)
			}
			if len(file.Chunks) != seqsPerRound*rounds {
				t.Fatalf("%s: file %d has %d chunks, want %d", label, f, len(file.Chunks), seqsPerRound*rounds)
			}
			for _, c := range file.Chunks {
				if len(c.Data) != 80 {
					t.Fatalf("%s: file %d seq %d kept %d-byte payload, want the 80-byte copy",
						label, f, c.Seq, len(c.Data))
				}
			}
		}
	}
	verify(s, "live store")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	verify(s2, fmt.Sprintf("reopened store (%d reads during soak)", reads.Load()))
}
