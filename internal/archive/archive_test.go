package archive

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"enviromic/internal/erasure"
	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// mkChunk builds a chunk spanning [startSec, endSec) with a payload whose
// bytes encode its identity (so reassembly mix-ups corrupt data
// detectably).
func mkChunk(file flash.FileID, origin int32, seq uint32, startSec, endSec float64) *flash.Chunk {
	return &flash.Chunk{
		File: file, Origin: origin, Seq: seq,
		Start: sim.Time(startSec * float64(time.Second)),
		End:   sim.Time(endSec * float64(time.Second)),
		Data:  []byte{byte(file), byte(origin), byte(seq), 0xEE},
	}
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustIngest(t *testing.T, s *Store, chunks []*flash.Chunk) IngestReport {
	t.Helper()
	rep, err := s.Ingest(chunks)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return rep
}

func TestIngestListQueryRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	defer s.Close()

	chunks := []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1),
		mkChunk(1, 3, 1, 1, 2),
		mkChunk(2, 4, 0, 10, 11),
		mkChunk(7, 5, 0, 20, 21),
	}
	rep := mustIngest(t, s, chunks)
	if rep.Added != 4 || rep.Duplicates != 0 {
		t.Fatalf("report = %+v, want 4 added 0 dup", rep)
	}

	files := s.Files()
	if len(files) != 3 {
		t.Fatalf("Files() = %d entries, want 3", len(files))
	}
	if files[0].ID != 1 || files[1].ID != 2 || files[2].ID != 7 {
		t.Fatalf("Files() not sorted by ID: %v", files)
	}
	fi, err := s.Info(1)
	if err != nil || fi.Chunks != 2 || fi.Bytes != 8 {
		t.Fatalf("Info(1) = %+v, %v", fi, err)
	}
	if !reflect.DeepEqual(fi.Origins, []int32{3}) {
		t.Fatalf("Info(1).Origins = %v", fi.Origins)
	}
	if _, err := s.Info(99); err != ErrNotFound {
		t.Fatalf("Info(99) err = %v, want ErrNotFound", err)
	}

	// Interval query: [10.5s, 25s) overlaps files 2 and 7 only.
	got := s.Query(sim.At(10500*time.Millisecond), sim.At(25*time.Second), nil)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 7 {
		t.Fatalf("Query = %v, want files 2,7", got)
	}
	// Origin filter: only origin 5 -> file 7.
	got = s.Query(0, 0, map[int32]bool{5: true})
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("origin query = %v, want file 7", got)
	}
	// Unbounded: all three.
	if got = s.Query(0, 0, nil); len(got) != 3 {
		t.Fatalf("unbounded query = %d files, want 3", len(got))
	}

	f, err := s.File(1)
	if err != nil {
		t.Fatalf("File(1): %v", err)
	}
	if len(f.Chunks) != 2 || f.Bytes() != 8 {
		t.Fatalf("File(1) = %d chunks %d bytes", len(f.Chunks), f.Bytes())
	}
	if f.Chunks[0].Data[2] != 0 || f.Chunks[1].Data[2] != 1 {
		t.Fatalf("payload bytes scrambled: %v %v", f.Chunks[0].Data, f.Chunks[1].Data)
	}
	if _, err := s.File(99); err != ErrNotFound {
		t.Fatalf("File(99) err = %v", err)
	}
}

func TestIngestDedupsAcrossToursAndBatches(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	defer s.Close()

	tour := []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1),
		mkChunk(1, 3, 1, 1, 2),
		// Migration copy inside one batch: same (file, origin, seq) held
		// by two nodes.
		mkChunk(1, 3, 1, 1, 2),
	}
	rep := mustIngest(t, s, tour)
	if rep.Added != 2 || rep.Duplicates != 1 {
		t.Fatalf("first tour: %+v, want 2 added 1 dup", rep)
	}

	// A repeated tour is a no-op.
	rep = mustIngest(t, s, tour)
	if rep.Added != 0 || rep.Duplicates != 3 {
		t.Fatalf("repeat tour: %+v, want 0 added 3 dup", rep)
	}
	if fi, _ := s.Info(1); fi.Chunks != 2 {
		t.Fatalf("chunks after repeat = %d, want 2", fi.Chunks)
	}
	st := s.Stats()
	if st.Counters["ingest.duplicates"] != 4 || st.Counters["ingest.chunks"] != 2 {
		t.Fatalf("counters = %v", st.Counters)
	}
}

func TestIngestGapDeltasAndRequery(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()

	// First tour leaves a hole at [2s, 3s).
	rep := mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1),
		mkChunk(1, 3, 1, 1, 2),
		mkChunk(1, 3, 3, 3, 4),
	})
	if len(rep.Files) != 1 {
		t.Fatalf("deltas = %v", rep.Files)
	}
	d := rep.Files[0]
	if d.GapsBefore != 0 || d.GapsAfter != 1 {
		t.Fatalf("delta = %+v, want gaps 0 -> 1", d)
	}
	if d.GapSpanAfter != time.Second {
		t.Fatalf("gap span = %v, want 1s", d.GapSpanAfter)
	}
	rq := rep.Requery()
	if !rq.Files[1] || !rq.Files[1|erasure.ParityFileBit] || len(rq.Files) != 2 {
		t.Fatalf("requery = %v, want file 1 plus its parity sibling", rq.Files)
	}

	gaps, err := s.Gaps(1, 0)
	if err != nil || len(gaps) != 1 {
		t.Fatalf("Gaps = %v, %v", gaps, err)
	}
	if gaps[0].Start != sim.At(2*time.Second) || gaps[0].End != sim.At(3*time.Second) {
		t.Fatalf("gap = %+v", gaps[0])
	}

	// Second tour (the re-query's haul) fills the hole.
	rep = mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 2, 2, 3)})
	d = rep.Files[0]
	if d.GapsBefore != 1 || d.GapsAfter != 0 || d.GapSpanAfter != 0 {
		t.Fatalf("fill delta = %+v, want gaps 1 -> 0", d)
	}
	if rq := rep.Requery(); len(rq.Files) != 0 {
		t.Fatalf("requery after fill = %v, want empty", rq.Files)
	}
}

func TestReopenPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 3})
	chunks := []*flash.Chunk{
		mkChunk(1, 3, 0, 0, 1), mkChunk(1, 4, 1, 1, 2),
		mkChunk(2, 5, 0, 5, 6), mkChunk(3, 6, 0, 9, 10),
	}
	mustIngest(t, s, chunks)
	before := s.Files()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a different Shards option: the manifest must win.
	s2 := openTest(t, dir, Options{Shards: 16})
	defer s2.Close()
	if st := s2.Stats(); st.Shards != 3 {
		t.Fatalf("reopened shards = %d, want manifest's 3", st.Shards)
	}
	after := s2.Files()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("listing changed across reopen:\nbefore %v\nafter  %v", before, after)
	}
	// Dedup state also survives: re-ingesting the same tour is a no-op.
	rep := mustIngest(t, s2, chunks)
	if rep.Added != 0 || rep.Duplicates != 4 {
		t.Fatalf("re-ingest after reopen: %+v", rep)
	}
	f, err := s2.File(1)
	if err != nil || len(f.Chunks) != 2 {
		t.Fatalf("File(1) after reopen: %v, %v", f, err)
	}
}

// TestTruncationRecovery simulates a torn append: the segment loses its
// tail mid-record and open must keep everything before the tear.
func TestTruncationRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1})
	var chunks []*flash.Chunk
	for i := 0; i < 10; i++ {
		chunks = append(chunks, mkChunk(1, 3, uint32(i), float64(i), float64(i+1)))
	}
	mustIngest(t, s, chunks)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := filepath.Join(dir, "shard-000.seg")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	// Cut into the last record (5 bytes off the end).
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	stats := s2.Stats()
	if stats.Chunks != 9 {
		t.Fatalf("chunks after torn-tail recovery = %d, want 9", stats.Chunks)
	}
	if stats.RecoveredBytes == 0 {
		t.Fatalf("recovery did not report dropped bytes")
	}
	// The nine surviving chunks are intact.
	f, err := s2.File(1)
	if err != nil || len(f.Chunks) != 9 {
		t.Fatalf("File(1) after recovery: %d chunks, %v", len(f.Chunks), err)
	}
	for i, c := range f.Chunks {
		if c.Seq != uint32(i) || c.Data[2] != byte(i) {
			t.Fatalf("chunk %d corrupted: seq=%d data=%v", i, c.Seq, c.Data)
		}
	}
	// And the lost chunk can be re-ingested (its dedup key was rolled
	// back along with the data).
	rep := mustIngest(t, s2, []*flash.Chunk{mkChunk(1, 3, 9, 9, 10)})
	if rep.Added != 1 {
		t.Fatalf("re-ingest of lost chunk: %+v", rep)
	}
}

// TestCorruptionMidFileDropsTail flips a byte inside an early frame; the
// CRC scan must stop there, keeping only the prefix. A snapshot-backed
// open does not rescan covered bytes, so the scan path is exercised by
// removing the snapshot (the same state a crash-before-first-checkpoint
// leaves), and the snapshot path is checked separately: the corruption
// must surface as a read error, never as corrupt audio.
func TestCorruptionMidFileDropsTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1})
	var chunks []*flash.Chunk
	for i := 0; i < 6; i++ {
		chunks = append(chunks, mkChunk(1, 3, uint32(i), float64(i), float64(i+1)))
	}
	mustIngest(t, s, chunks)
	s.Close()

	seg := filepath.Join(dir, "shard-000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	frameLen := frameHeaderSize + chunks[0].RecordSize()
	// Corrupt a payload byte of the third frame.
	data[2*frameLen+frameHeaderSize+3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	// With the close-time snapshot still in place the indexes load as
	// written, but fetching the corrupted chunk must fail its frame CRC.
	s2 := openTest(t, dir, Options{})
	if st := s2.Stats(); st.Chunks != 6 {
		t.Fatalf("chunks under snapshot = %d, want 6", st.Chunks)
	}
	if _, err := s2.File(1); err == nil {
		t.Fatalf("File over corrupted frame succeeded, want CRC error")
	}
	s2.Close()

	// Without a snapshot the rebuild scan stops at the corrupt frame.
	if err := os.Remove(filepath.Join(dir, "shard-000.idx")); err != nil {
		t.Fatalf("remove snapshot: %v", err)
	}
	s3 := openTest(t, dir, Options{})
	defer s3.Close()
	if st := s3.Stats(); st.Chunks != 2 {
		t.Fatalf("chunks after mid-file corruption = %d, want 2 (prefix)", st.Chunks)
	}
}

func TestSegmentsWithoutManifestRefused(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1})
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 0, 0, 1)})
	s.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("remove manifest: %v", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open with orphaned segments succeeded, want error")
	}
}

func TestReassemblyCacheInvalidatedOnIngest(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 0, 0, 1)})

	f1, err := s.File(1)
	if err != nil || len(f1.Chunks) != 1 {
		t.Fatalf("File: %v %v", f1, err)
	}
	f2, _ := s.File(1)
	if f2 != f1 {
		t.Fatalf("second read missed the cache")
	}
	st := s.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}

	// Ingest into the file: the cached reassembly must not be served.
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 1, 1, 2)})
	f3, err := s.File(1)
	if err != nil || len(f3.Chunks) != 2 {
		t.Fatalf("File after ingest = %d chunks, %v", len(f3.Chunks), err)
	}
}

func TestCacheEviction(t *testing.T) {
	// Budget fits roughly one file (payload 4 bytes + 64 overhead each).
	s := openTest(t, t.TempDir(), Options{CacheBytes: 100})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 0, 0, 1), mkChunk(2, 3, 0, 5, 6)})
	s.File(1)
	s.File(2) // evicts file 1
	st := s.Stats()
	if st.Cache.Entries != 1 || st.Cache.Evictions != 1 {
		t.Fatalf("cache = %+v, want 1 entry 1 eviction", st.Cache)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{CacheBytes: -1})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 0, 0, 1)})
	a, _ := s.File(1)
	b, _ := s.File(1)
	if a == b {
		t.Fatalf("disabled cache still returned a shared reassembly")
	}
}

// TestQueryMatchesBruteForce cross-checks the interval index against a
// linear scan over randomized file spans and windows.
func TestQueryMatchesBruteForce(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 5})
	defer s.Close()
	rng := rand.New(rand.NewSource(42))
	var chunks []*flash.Chunk
	for id := flash.FileID(1); id <= 40; id++ {
		start := rng.Float64() * 100
		length := 0.5 + rng.Float64()*20
		origin := int32(rng.Intn(6))
		chunks = append(chunks,
			mkChunk(id, origin, 0, start, start+length/2),
			mkChunk(id, origin+1, 1, start+length/2, start+length))
	}
	mustIngest(t, s, chunks)
	all := s.Files()

	for trial := 0; trial < 200; trial++ {
		a := rng.Float64() * 120
		b := a + rng.Float64()*30
		from, to := sim.Time(a*float64(time.Second)), sim.Time(b*float64(time.Second))
		var origins map[int32]bool
		if trial%3 == 0 {
			origins = map[int32]bool{int32(rng.Intn(7)): true}
		}
		got := s.Query(from, to, origins)
		var want []flash.FileID
		for _, fi := range all {
			if fi.Start >= to || fi.End <= from {
				continue
			}
			if origins != nil {
				hit := false
				for _, o := range fi.Origins {
					if origins[o] {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
			}
			want = append(want, fi.ID)
		}
		gotIDs := make(map[flash.FileID]bool, len(got))
		for _, fi := range got {
			gotIDs[fi.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d [%v,%v) origins=%v: got %d files, want %d", trial, from, to, origins, len(got), len(want))
		}
		for _, id := range want {
			if !gotIDs[id] {
				t.Fatalf("trial %d: missing file %d", trial, id)
			}
		}
	}
}

func TestQueryResultsSorted(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(9, 1, 0, 5, 6),
		mkChunk(2, 1, 0, 1, 2),
		mkChunk(5, 1, 0, 3, 4),
	})
	got := s.Query(0, 0, nil)
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 5 || got[2].ID != 9 {
		t.Fatalf("query order = %v, want by start time", got)
	}
}

func TestSyncWritesCommittedSizes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 2})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 3, 0, 0, 1)})
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	m := manifest{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(m.Committed) != 2 || m.Committed[0]+m.Committed[1] == 0 {
		t.Fatalf("committed = %v", m.Committed)
	}
}

// TestFileErasureDecodesGaps archives a dispersal group minus one data
// chunk, plus the group's parity carriers, and verifies FileErasure
// reconstructs the hole while plain File still shows it.
func TestFileErasureDecodesGaps(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	defer s.Close()

	g := erasure.Group{File: 5, Origin: 9, FirstSeq: 0, Count: 4,
		Start: sim.At(0), End: sim.At(4 * time.Second), N: 4, K: 2}
	var group []*flash.Chunk
	for i := 0; i < 4; i++ {
		group = append(group, mkChunk(5, 9, uint32(i), float64(i), float64(i+1)))
	}
	code, err := erasure.Cached(g.N, g.K)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := erasure.EncodeParity(code, g, group)
	if err != nil {
		t.Fatalf("EncodeParity: %v", err)
	}
	var carriers []*flash.Chunk
	for j, blob := range blobs {
		carriers = append(carriers, erasure.Carriers(g, g.K+j, blob)...)
	}

	// Tour 1: data minus seq 1 (a crashed holder), plus all parity.
	mustIngest(t, s, append([]*flash.Chunk{group[0], group[2], group[3]}, carriers...))

	f, err := s.File(5)
	if err != nil || len(f.Chunks) != 3 {
		t.Fatalf("File(5) = %v chunks, %v; want 3 (hole present)", f, err)
	}
	df, rep, err := s.FileErasure(5)
	if err != nil {
		t.Fatalf("FileErasure: %v", err)
	}
	if rep.Groups != 1 || rep.RecoveredChunks != 1 || rep.MissingChunks != 0 {
		t.Fatalf("decode report = %+v, want 1 group 1 recovered", rep)
	}
	if len(df.Chunks) != 4 {
		t.Fatalf("decoded file has %d chunks, want 4", len(df.Chunks))
	}
	rec := df.Chunks[1]
	want := group[1]
	if rec.Seq != want.Seq || rec.Start != want.Start || rec.End != want.End ||
		string(rec.Data) != string(want.Data) {
		t.Fatalf("reconstructed chunk %+v differs from original %+v", rec, want)
	}
	if len(df.Gaps(0)) != 0 {
		t.Fatalf("decoded file still has gaps: %v", df.Gaps(0))
	}
	// A file with no archived parity degrades to File.
	mustIngest(t, s, []*flash.Chunk{mkChunk(8, 1, 0, 50, 51)})
	pf, rep2, err := s.FileErasure(8)
	if err != nil || rep2.Groups != 0 || len(pf.Chunks) != 1 {
		t.Fatalf("no-parity FileErasure = %v, %+v, %v", pf, rep2, err)
	}
}
