package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// Index snapshots make Open O(tail) instead of O(archive): each shard
// periodically checkpoints its in-memory indexes to `shard-NNN.idx`, a
// single-file, CRC-framed dump stamped with the shard's segment
// generation and the segment offset it covers. Open loads the snapshot,
// rebuilds the indexes from metadata alone (no payload reads, no record
// decoding), and replays only the segment bytes appended after the
// covered offset. Any mismatch — bad magic, unsupported version, CRC
// failure, a generation that disagrees with the manifest (the segment
// was compacted after the snapshot), or a covered offset beyond the
// segment — discards the snapshot and falls back to the full scan, so a
// corrupt or stale snapshot can cost time but never correctness.
//
// Layout (all integers big-endian, matching the segment framing):
//
//	header (32 bytes):
//	  u32 magic "EVIX"   u32 version
//	  u64 generation     u64 coveredOffset
//	  u32 payloadLen     u32 CRC-32 (IEEE) of payload
//	payload:
//	  u64 supersededBytes
//	  u32 fileCount
//	  per file (sorted by ID):
//	    u32 id  u64 start  u64 end  u64 payloadBytes
//	    u32 originCount  [u32 origin]...
//	    u32 chunkCount   [u64 offset  u64 start  u64 end
//	                      u32 origin  u32 length  u32 seq]...
//
// The per-file dedup map is deliberately absent: it is rebuilt lazily
// from the chunk list the first time an ingest touches the file
// (fileMeta.ensureSeen), so loading a million-chunk snapshot performs no
// hash-map inserts for files that are never written again.
const (
	snapshotMagic      = 0x45564958 // "EVIX"
	snapshotVersion    = 1
	snapshotHeaderSize = 32
	snapshotSuffix     = ".idx"
)

// errSnapshot tags every load failure so openShard can distinguish "no
// usable snapshot, rescan" from real I/O errors on the segment itself.
var errSnapshot = errors.New("archive: unusable snapshot")

// snapshotPath derives the snapshot file path from the segment path.
func snapshotPath(segPath string) string {
	ext := filepath.Ext(segPath)
	return segPath[:len(segPath)-len(ext)] + snapshotSuffix
}

// encodeSnapshot serializes the shard's indexes. Caller must guarantee a
// quiescent index (the shard's writer goroutine, or open-time code).
func (sh *shard) encodeSnapshot() []byte {
	ids := make([]flash.FileID, 0, len(sh.files))
	var chunkTotal int
	for id, fm := range sh.files {
		ids = append(ids, id)
		chunkTotal += len(fm.chunks)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	size := snapshotHeaderSize + 12 + len(ids)*32 + chunkTotal*36
	for _, id := range ids {
		size += 4 * len(sh.files[id].origins)
	}
	buf := make([]byte, snapshotHeaderSize, size)
	buf = binary.BigEndian.AppendUint64(buf, uint64(sh.supersededBytes))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		fm := sh.files[id]
		buf = binary.BigEndian.AppendUint32(buf, uint32(fm.id))
		buf = binary.BigEndian.AppendUint64(buf, uint64(fm.start))
		buf = binary.BigEndian.AppendUint64(buf, uint64(fm.end))
		buf = binary.BigEndian.AppendUint64(buf, uint64(fm.bytes))
		origins := make([]int32, 0, len(fm.origins))
		for o := range fm.origins {
			origins = append(origins, o)
		}
		sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(origins)))
		for _, o := range origins {
			buf = binary.BigEndian.AppendUint32(buf, uint32(o))
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(fm.chunks)))
		for _, m := range fm.chunks {
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.offset))
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.start))
			buf = binary.BigEndian.AppendUint64(buf, uint64(m.end))
			buf = binary.BigEndian.AppendUint32(buf, uint32(m.origin))
			buf = binary.BigEndian.AppendUint32(buf, uint32(m.length))
			buf = binary.BigEndian.AppendUint32(buf, m.seq)
		}
	}
	payload := buf[snapshotHeaderSize:]
	binary.BigEndian.PutUint32(buf[0:], snapshotMagic)
	binary.BigEndian.PutUint32(buf[4:], snapshotVersion)
	binary.BigEndian.PutUint64(buf[8:], sh.gen)
	binary.BigEndian.PutUint64(buf[16:], uint64(sh.size))
	binary.BigEndian.PutUint32(buf[24:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(payload))
	return buf
}

// writeSnapshot checkpoints the shard's indexes: encode, write to a temp
// file, fsync, atomic rename. A crash at any point leaves either the old
// snapshot or the new one, never a torn one (a torn temp is ignored and
// deleted at the next open). Runs on the shard's writer goroutine (or at
// open/close when no writer is live).
func (sh *shard) writeSnapshot() error {
	if sh.env.noSnapshots || sh.checkpointsBroken {
		return nil
	}
	hook := sh.env.checkpointHook
	buf := sh.encodeSnapshot()
	tmp := sh.idxPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if hook != nil {
		if err := hook(sh.id, "checkpoint:temp-written"); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hook != nil {
		if err := hook(sh.id, "checkpoint:temp-synced"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, sh.idxPath); err != nil {
		return err
	}
	syncDir(filepath.Dir(sh.idxPath))
	sh.lastCheckpoint = sh.size
	sh.env.cCheckpoints.Inc()
	sh.env.cCheckpointBytes.Add(int64(len(buf)))
	return nil
}

// loadSnapshot reads and validates the shard's snapshot and rebuilds the
// in-memory indexes from it. wantGen is the manifest's generation for
// this shard; segSize the segment's current size. On success the shard's
// files/byOrigin/supersededBytes are populated and the covered offset is
// returned; the caller replays [covered, segSize) and rebuilds the
// interval index. Every failure is wrapped in errSnapshot.
func (sh *shard) loadSnapshot(wantGen uint64, segSize int64) (int64, error) {
	data, err := os.ReadFile(sh.idxPath)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", errSnapshot, err)
	}
	if len(data) < snapshotHeaderSize {
		return 0, fmt.Errorf("%w: short header (%d bytes)", errSnapshot, len(data))
	}
	if binary.BigEndian.Uint32(data[0:]) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic", errSnapshot)
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != snapshotVersion {
		return 0, fmt.Errorf("%w: version %d not supported", errSnapshot, v)
	}
	if g := binary.BigEndian.Uint64(data[8:]); g != wantGen {
		return 0, fmt.Errorf("%w: generation %d, manifest says %d", errSnapshot, g, wantGen)
	}
	covered := int64(binary.BigEndian.Uint64(data[16:]))
	if covered < 0 || covered > segSize {
		return 0, fmt.Errorf("%w: covers %d bytes, segment has %d", errSnapshot, covered, segSize)
	}
	payload := data[snapshotHeaderSize:]
	if n := binary.BigEndian.Uint32(data[24:]); int(n) != len(payload) {
		return 0, fmt.Errorf("%w: payload is %d bytes, header says %d", errSnapshot, len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[28:]) {
		return 0, fmt.Errorf("%w: payload CRC mismatch", errSnapshot)
	}

	// Validated; decode. The reader helpers fail soft (ok=false) on a
	// short payload so a logically-inconsistent but CRC-clean snapshot
	// (impossible unless we wrote it wrong) still degrades to a rescan.
	r := snapReader{buf: payload, ok: true}
	superseded := int64(r.u64())
	fileCount := int(r.u32())
	files := make(map[flash.FileID]*fileMeta, fileCount)
	byOrigin := make(map[int32]map[flash.FileID]struct{})
	for i := 0; i < fileCount && r.ok; i++ {
		fm := &fileMeta{
			id:    flash.FileID(r.u32()),
			start: sim.Time(r.u64()),
			end:   sim.Time(r.u64()),
			bytes: int64(r.u64()),
		}
		originCount := int(r.u32())
		fm.origins = make(map[int32]struct{}, originCount)
		for j := 0; j < originCount && r.ok; j++ {
			o := int32(r.u32())
			fm.origins[o] = struct{}{}
			m := byOrigin[o]
			if m == nil {
				m = make(map[flash.FileID]struct{})
				byOrigin[o] = m
			}
			m[fm.id] = struct{}{}
		}
		chunkCount := int(r.u32())
		if chunkCount < 0 || !r.has(chunkCount*36) {
			r.ok = false
			break
		}
		// Hot loop of a million-chunk open: decode the fixed-width chunk
		// records by direct indexing rather than through the cursor's
		// per-field calls.
		fm.chunks = make([]chunkMeta, chunkCount)
		recs := r.buf[r.pos : r.pos+chunkCount*36]
		r.pos += chunkCount * 36
		for j := range fm.chunks {
			rec := recs[j*36 : j*36+36 : j*36+36]
			fm.chunks[j] = chunkMeta{
				offset: int64(binary.BigEndian.Uint64(rec[0:])),
				start:  sim.Time(binary.BigEndian.Uint64(rec[8:])),
				end:    sim.Time(binary.BigEndian.Uint64(rec[16:])),
				origin: int32(binary.BigEndian.Uint32(rec[24:])),
				length: int32(binary.BigEndian.Uint32(rec[28:])),
				seq:    binary.BigEndian.Uint32(rec[32:]),
			}
		}
		files[fm.id] = fm
	}
	if !r.ok || len(r.buf) != r.pos {
		return 0, fmt.Errorf("%w: truncated or oversized payload", errSnapshot)
	}
	sh.files = files
	sh.byOrigin = byOrigin
	sh.supersededBytes = superseded
	return covered, nil
}

// snapReader is a bounds-checked big-endian cursor over a snapshot
// payload.
type snapReader struct {
	buf []byte
	pos int
	ok  bool
}

func (r *snapReader) has(n int) bool { return r.pos+n <= len(r.buf) }

func (r *snapReader) u32() uint32 {
	if !r.has(4) {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if !r.has(8) {
		r.ok = false
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry is
// durable before the protocol's next step. Best-effort: some filesystems
// refuse directory fsync, and the frame/snapshot CRCs keep a reordered
// metadata journal safe (worst case: a stale view that the validation
// path rejects into a rescan).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
