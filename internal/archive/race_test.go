package archive

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// TestConcurrentIngestAndQuery is the -race stress test: several ingest
// goroutines (with overlapping chunk streams, so dedup contends) racing
// listings, interval queries, gap math, reassembly (cache churn), and
// stats. Correctness check at the end: every unique chunk landed exactly
// once.
func TestConcurrentIngestAndQuery(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4, CacheBytes: 1 << 20})
	defer s.Close()

	const (
		writers       = 4
		files         = 12
		seqsPerWriter = 40
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers hammer every query surface until writers finish.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Files()
				s.Query(sim.At(time.Duration(i%30)*time.Second), sim.At(time.Duration(i%30+5)*time.Second), map[int32]bool{int32(i % writers): true})
				s.Gaps(flash.FileID(i%files+1), 0)
				s.File(flash.FileID(i%files + 1))
				s.Stats()
			}
		}(r)
	}

	// Writers ingest interleaved batches; adjacent writers overlap on
	// origin (w and w-1 emit some identical (file, origin, seq) keys).
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; seq < seqsPerWriter; seq++ {
				var batch []*flash.Chunk
				for f := 1; f <= files; f++ {
					batch = append(batch, mkChunk(flash.FileID(f), int32(w), uint32(seq), float64(seq), float64(seq+1)))
					if w > 0 {
						// Duplicate of the previous writer's chunk.
						batch = append(batch, mkChunk(flash.FileID(f), int32(w-1), uint32(seq), float64(seq), float64(seq+1)))
					}
				}
				if _, err := s.Ingest(batch); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	wantChunks := files * writers * seqsPerWriter // unique (file, origin, seq) triples
	if st.Chunks != wantChunks {
		t.Fatalf("chunks = %d, want %d", st.Chunks, wantChunks)
	}
	for f := 1; f <= files; f++ {
		file, err := s.File(flash.FileID(f))
		if err != nil {
			t.Fatalf("File(%d): %v", f, err)
		}
		if len(file.Chunks) != writers*seqsPerWriter {
			t.Fatalf("file %d has %d chunks, want %d", f, len(file.Chunks), writers*seqsPerWriter)
		}
	}
}

// TestConcurrentHTTP drives the handler from parallel clients while
// ingest runs underneath — the service-level companion to the store
// stress test.
func TestConcurrentHTTP(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	defer s.Close()
	mustIngest(t, s, []*flash.Chunk{mkChunk(1, 0, 0, 0, 1)})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	paths := []string{"/files", "/files/1", "/files/1/gaps", "/files/1/wav", "/query?from=0s&to=100s", "/stats"}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + paths[(c+i)%len(paths)])
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	for seq := 1; seq <= 50; seq++ {
		mustIngest(t, s, []*flash.Chunk{
			mkChunk(1, 0, uint32(seq), float64(seq), float64(seq+1)),
			mkChunk(flash.FileID(seq%5+2), 1, uint32(seq), float64(seq), float64(seq+1)),
		})
	}
	close(stop)
	wg.Wait()

	if st := s.Stats(); st.Chunks != 1+100 {
		t.Fatalf("chunks = %d, want 101", st.Chunks)
	}
}

// TestConcurrentIngestSameKeys has every writer ingest the *same* chunk
// stream; exactly one copy of each key may land regardless of interleaving.
func TestConcurrentIngestSameKeys(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	defer s.Close()
	mkBatch := func() []*flash.Chunk {
		var b []*flash.Chunk
		for f := 1; f <= 6; f++ {
			for q := 0; q < 25; q++ {
				b = append(b, mkChunk(flash.FileID(f), 7, uint32(q), float64(q), float64(q+1)))
			}
		}
		return b
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Ingest(mkBatch()); err != nil {
				t.Errorf("ingest: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Chunks != 6*25 {
		t.Fatalf("chunks = %d, want %d (dedup must hold under races)", st.Chunks, 6*25)
	}
	if got := st.Counters["ingest.chunks"] + st.Counters["ingest.duplicates"]; got != 6*6*25 {
		t.Fatalf("accounting: added+dups = %d, want %d", got, 6*6*25)
	}
}
