package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
	"enviromic/internal/telemetry"
)

// chunkMeta is the in-memory index entry for one archived chunk: enough
// metadata to answer listings, interval queries, and gap math without
// touching disk, plus the segment location to fetch the payload when a
// reassembly actually needs bytes.
type chunkMeta struct {
	offset int64 // frame payload offset in the shard segment
	start  sim.Time
	end    sim.Time
	origin int32
	length int32 // payload length (compact record size)
	seq    uint32
}

// payloadBytes is the audio bytes inside the record (header excluded).
func (m chunkMeta) payloadBytes() int64 { return int64(m.length) - flash.MinRecordSize }

// frameBytes is the full on-disk footprint of the chunk's frame.
func (m chunkMeta) frameBytes() int64 { return int64(m.length) + frameHeaderSize }

// fileMeta aggregates one distributed file's archived chunks.
type fileMeta struct {
	id      flash.FileID
	start   sim.Time // min chunk start
	end     sim.Time // max chunk end
	bytes   int64    // payload bytes (audio only, headers excluded)
	version uint64   // bumped on every ingest that changes chunks; guards the reassembly cache
	chunks  []chunkMeta
	// seen maps (origin, seq) dedup keys to the chunk's index in chunks.
	// nil after a snapshot load: it is rebuilt lazily by ensureSeen the
	// first time an ingest touches the file, so opening a million-chunk
	// snapshot does no dedup-map inserts for files that never grow again.
	seen    map[uint64]int32
	origins map[int32]struct{}
}

// dedupKey packs (origin, seq) into one map key. File identity is implied
// by the enclosing fileMeta.
func dedupKey(origin int32, seq uint32) uint64 {
	return uint64(uint32(origin))<<32 | uint64(seq)
}

// ensureSeen builds the dedup map from the chunk list if it is absent
// (after a snapshot load). Must run on the shard's sole mutator.
func (fm *fileMeta) ensureSeen() {
	if fm.seen != nil {
		return
	}
	fm.seen = make(map[uint64]int32, len(fm.chunks))
	for i, m := range fm.chunks {
		fm.seen[dedupKey(m.origin, m.seq)] = int32(i)
	}
}

// gapsIn computes uncovered stretches longer than tolerance over a set of
// chunk spans, mirroring retrieval.File.Gaps (time-major sort, cursor
// sweep) so the archive and the in-field mule agree on what "a gap" is.
func gapsIn(chunks []chunkMeta, tolerance time.Duration) []Gap {
	if len(chunks) == 0 {
		return nil
	}
	sorted := make([]chunkMeta, len(chunks))
	copy(sorted, chunks)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.seq < b.seq
	})
	var gaps []Gap
	cursor := sorted[0].end
	for _, c := range sorted[1:] {
		if c.start.Sub(cursor) > tolerance {
			gaps = append(gaps, Gap{Start: cursor, End: c.start})
		}
		if c.end > cursor {
			cursor = c.end
		}
	}
	return gaps
}

// gapSpan sums gap durations.
func gapSpan(gaps []Gap) time.Duration {
	var d time.Duration
	for _, g := range gaps {
		d += g.End.Sub(g.Start)
	}
	return d
}

// shardEnv is the store-wide configuration and counters shared by every
// shard. Hooks are test seams for the crash-safety suites: they run at
// each fsync/rename boundary of the checkpoint and compaction protocols
// and abort the operation (simulating a kill) when they return an error.
type shardEnv struct {
	gapTolerance    time.Duration
	syncOnIngest    bool
	noSnapshots     bool
	checkpointBytes int64 // bytes appended between auto checkpoints; <=0 disables
	autoCompact     int64 // superseded bytes per shard triggering auto compaction; <=0 disables

	cGroups          *telemetry.Counter // ingest.groups
	cGroupSyncs      *telemetry.Counter // ingest.group_syncs
	cSnapLoads       *telemetry.Counter // open.snapshot_loads
	cSnapFallbacks   *telemetry.Counter // open.snapshot_fallbacks
	cReplayed        *telemetry.Counter // open.replayed_chunks
	cCheckpoints     *telemetry.Counter // checkpoint.writes
	cCheckpointBytes *telemetry.Counter // checkpoint.bytes
	cCompactions     *telemetry.Counter // compact.runs
	cReclaimed       *telemetry.Counter // compact.reclaimed_bytes

	// Pipeline and open-path histograms (nil-safe like every metric).
	hGroupBatch *telemetry.Histogram // submissions per group commit
	hFsync      *telemetry.Histogram // group-commit fsync latency
	hSnapLoad   *telemetry.Histogram // per-shard snapshot load time at open
	hReplay     *telemetry.Histogram // per-shard segment scan time at open

	checkpointHook func(shard int, point string) error
	compactHook    func(shard int, point string) error

	// bumpGen asks the store to persist generation gen for shard id in
	// the manifest (serialized store-side).
	bumpGen func(id int, gen uint64) error
}

// shard owns one segment file and the indexes over it. Files map to
// shards by ID (fileID mod shard count), so a shard is authoritative for
// its files and shards never coordinate: ingest batches and queries
// parallelize across shards, serialized only within one.
//
// Mutation discipline: the shard's writer goroutine (pipeline.go) is the
// ONLY mutator of the index structures, the segment file, and the fields
// below the mutex. It reads them lock-free (no other writer exists) and
// takes mu.Lock only to publish mutations; queries take mu.RLock. The
// fields above the mutex are writer-goroutine-private.
type shard struct {
	id      int
	path    string
	idxPath string
	env     *shardEnv

	// Writer-goroutine-private state (plus open/close, which run with no
	// writer live).
	gen               uint64 // segment generation; bumped by compaction, guards snapshots
	lastCheckpoint    int64  // segment size covered by the last written snapshot
	checkpointsBroken bool   // set when a failed compaction leaves disk state unknowable

	subs chan *submission
	ctl  chan func()
	wg   sync.WaitGroup

	mu   sync.RWMutex
	f    *os.File
	size int64
	// epoch is bumped whenever the segment file or chunk offsets are
	// swapped (compaction); readers holding stale chunkMeta copies check
	// it before trusting offsets.
	epoch uint64
	// files is the primary index; byOrigin and the byStart/prefixMaxEnd
	// pair are secondary indexes maintained on ingest.
	files    map[flash.FileID]*fileMeta
	byOrigin map[int32]map[flash.FileID]struct{}
	// byStart holds files sorted by span start; prefixMaxEnd[i] is the
	// max span end over byStart[:i+1]. Together they answer interval
	// stabbing queries ("files overlapping [from,to)") with a binary
	// search plus a walk that stops at the first prefix whose max end
	// falls below the window — no segment scan, no full index scan.
	byStart      []*fileMeta
	prefixMaxEnd []sim.Time

	// unverifiedTo marks the segment prefix indexed without a CRC pass (a
	// snapshot-loaded region; a scan verifies every frame it indexes).
	// readChunk re-verifies frames below it so corruption hiding under a
	// snapshot still surfaces, and skips the check — payload-only reads —
	// everywhere else.
	unverifiedTo int64

	recoveredBytes  int64 // bytes truncated away by open-time recovery
	supersededBytes int64 // dead frame bytes reclaimable by compaction

	// scratch is the writer's reusable group-commit encode buffer.
	scratch []byte
}

// openShard opens (creating if absent) the shard's segment file and
// rebuilds the indexes — from the snapshot plus a tail replay when a
// valid snapshot exists, from a full segment scan otherwise — then
// truncates any torn tail. It does not start the writer goroutine; the
// store does that once every shard opened.
func openShard(id int, path string, gen uint64, env *shardEnv) (*shard, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:      id,
		path:    path,
		idxPath: snapshotPath(path),
		env:     env,
		gen:     gen,
		f:       f,
		subs:    make(chan *submission, 128),
		ctl:     make(chan func()),
	}
	// Stray temp files are debris from a crash mid-checkpoint or
	// mid-compaction; both protocols only trust fully-renamed files.
	os.Remove(path + compactSuffix)
	os.Remove(sh.idxPath + ".tmp")

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	segSize := st.Size()

	scanFrom := int64(0)
	if !env.noSnapshots {
		loadStart := time.Now()
		if covered, lerr := sh.loadSnapshot(gen, segSize); lerr == nil {
			scanFrom = covered
			sh.lastCheckpoint = covered
			sh.unverifiedTo = covered
			env.cSnapLoads.Inc()
			env.hSnapLoad.ObserveDuration(time.Since(loadStart))
		} else {
			if !os.IsNotExist(unwrapSnapshotErr(lerr)) {
				env.cSnapFallbacks.Inc()
			}
			sh.files = nil // discard any partial load
		}
	}
	if sh.files == nil {
		sh.files = make(map[flash.FileID]*fileMeta)
		sh.byOrigin = make(map[int32]map[flash.FileID]struct{})
	}

	replayed := 0
	scanStart := time.Now()
	valid, err := scanSegment(f, scanFrom, func(c *flash.Chunk, off int64, length int32) {
		sh.applyChunk(c, off, length)
		replayed++
		flash.FreeChunk(c) // the index keeps metadata only
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: scanning %s: %w", path, err)
	}
	env.hReplay.ObserveDuration(time.Since(scanStart))
	if scanFrom > 0 {
		env.cReplayed.Add(int64(replayed))
	}
	if segSize > valid {
		sh.recoveredBytes = segSize - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: truncating torn tail of %s: %w", path, err)
		}
	}
	sh.size = valid
	sh.rebuildInterval()
	return sh, nil
}

// unwrapSnapshotErr digs the underlying cause out of an errSnapshot wrap
// (used only to keep "snapshot simply absent" out of the fallback
// counter).
func unwrapSnapshotErr(err error) error {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		next := u.Unwrap()
		if next == nil {
			return err
		}
		err = next
	}
}

// applyChunk folds one segment frame into the index with full
// duplicate/supersession semantics: an unseen (origin, seq) key is added;
// a seen key with a strictly longer payload supersedes the indexed copy
// (the old frame becomes dead bytes); anything else is a duplicate (the
// new frame is dead bytes, if it is on disk at all). The scan/replay path
// calls this for every frame so reopening a segment that still holds
// superseded frames — a crash beat compaction to them — reproduces
// exactly the index state ingest built. Must run on the shard's sole
// mutator; the ingest commit path applies the same rules via its staged
// variant in pipeline.go.
func (sh *shard) applyChunk(c *flash.Chunk, off int64, length int32) {
	fm := sh.files[c.File]
	if fm == nil {
		fm = &fileMeta{
			id:      c.File,
			start:   c.Start,
			end:     c.End,
			seen:    make(map[uint64]int32),
			origins: make(map[int32]struct{}),
		}
		sh.files[c.File] = fm
	}
	fm.ensureSeen()
	meta := chunkMeta{
		offset: off, start: c.Start, end: c.End,
		origin: c.Origin, length: length, seq: c.Seq,
	}
	key := dedupKey(c.Origin, c.Seq)
	if i, dup := fm.seen[key]; dup {
		old := fm.chunks[i]
		if meta.length > old.length {
			// Longer copy supersedes: point the index at the new frame,
			// the old frame is dead weight until compaction.
			fm.chunks[i] = meta
			fm.bytes += meta.payloadBytes() - old.payloadBytes()
			sh.supersededBytes += old.frameBytes()
			sh.absorbSpan(fm, meta)
		} else {
			sh.supersededBytes += meta.frameBytes()
		}
		return
	}
	fm.seen[key] = int32(len(fm.chunks))
	fm.chunks = append(fm.chunks, meta)
	fm.bytes += meta.payloadBytes()
	sh.absorbSpan(fm, meta)
}

// absorbSpan widens the file span and origin indexes for one chunk.
func (sh *shard) absorbSpan(fm *fileMeta, m chunkMeta) {
	if m.start < fm.start {
		fm.start = m.start
	}
	if m.end > fm.end {
		fm.end = m.end
	}
	fm.origins[m.origin] = struct{}{}
	byo := sh.byOrigin[m.origin]
	if byo == nil {
		byo = make(map[flash.FileID]struct{})
		sh.byOrigin[m.origin] = byo
	}
	byo[fm.id] = struct{}{}
}

// rebuildInterval re-sorts the interval index. Caller holds mu (write) or
// is the open scan. O(files log files) per ingest batch, amortized cheap
// next to the disk write.
func (sh *shard) rebuildInterval() {
	sh.byStart = sh.byStart[:0]
	for _, fm := range sh.files {
		sh.byStart = append(sh.byStart, fm)
	}
	sort.Slice(sh.byStart, func(i, j int) bool {
		a, b := sh.byStart[i], sh.byStart[j]
		if a.start != b.start {
			return a.start < b.start
		}
		return a.id < b.id
	})
	sh.prefixMaxEnd = sh.prefixMaxEnd[:0]
	var max sim.Time
	for _, fm := range sh.byStart {
		if fm.end > max {
			max = fm.end
		}
		sh.prefixMaxEnd = append(sh.prefixMaxEnd, max)
	}
}

// info builds a FileInfo snapshot. Caller holds mu (read).
func (sh *shard) info(fm *fileMeta, tolerance time.Duration) FileInfo {
	origins := make([]int32, 0, len(fm.origins))
	for o := range fm.origins {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	return FileInfo{
		ID:      fm.id,
		Start:   fm.start,
		End:     fm.end,
		Chunks:  len(fm.chunks),
		Bytes:   fm.bytes,
		Origins: origins,
		Gaps:    len(gapsIn(fm.chunks, tolerance)),
	}
}

// query collects files overlapping [from,to) whose origin set intersects
// origins (nil origins = no filter), using the interval index. from/to
// both zero means unbounded, matching retrieval.Query semantics.
func (sh *shard) query(from, to sim.Time, origins map[int32]bool, tolerance time.Duration) []FileInfo {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []FileInfo
	bounded := from != 0 || to != 0
	ub := len(sh.byStart)
	if bounded && to != 0 {
		ub = sort.Search(len(sh.byStart), func(i int) bool { return sh.byStart[i].start >= to })
	}
	for i := ub - 1; i >= 0; i-- {
		if bounded && sh.prefixMaxEnd[i] <= from {
			break // nothing earlier can reach into the window
		}
		fm := sh.byStart[i]
		if bounded && fm.end <= from {
			continue
		}
		if len(origins) > 0 && !intersects(fm.origins, origins) {
			continue
		}
		out = append(out, sh.info(fm, tolerance))
	}
	return out
}

func intersects(have map[int32]struct{}, want map[int32]bool) bool {
	for o := range want {
		if _, ok := have[o]; ok {
			return true
		}
	}
	return false
}

// fileChunks returns a copy of the file's chunk metadata, its cache
// version, and the segment epoch the offsets are valid for; ok is false
// for unknown files.
func (sh *shard) fileChunks(id flash.FileID) (metas []chunkMeta, version, epoch uint64, ok bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return nil, 0, 0, false
	}
	metas = make([]chunkMeta, len(fm.chunks))
	copy(metas, fm.chunks)
	return metas, fm.version, sh.epoch, true
}

// version returns the file's cache version (ok=false for unknown files).
func (sh *shard) version(id flash.FileID) (uint64, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return 0, false
	}
	return fm.version, true
}

// gaps computes the file's gaps at the given tolerance from index
// metadata alone (no disk reads).
func (sh *shard) gaps(id flash.FileID, tolerance time.Duration) ([]Gap, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return nil, false
	}
	return gapsIn(fm.chunks, tolerance), true
}

// errEpochChanged reports that a compaction swapped the segment between a
// fileChunks metadata fetch and the payload read; the caller refetches
// and retries.
var errEpochChanged = fmt.Errorf("archive: segment swapped mid-read")

// readChunks fetches every chunk in metas from the segment. The read
// lock pins the file handle and epoch: frames are immutable under
// concurrent appends, and a compaction that replaced the segment since
// the metadata was fetched is detected by the epoch check instead of
// returning bytes from the wrong offsets.
//
// Frames that sit near each other on disk — the common case, since a
// tour's chunks land in a handful of group commits — are coalesced into
// single reads: one syscall for a run of frames beats one per chunk by
// orders of magnitude on a reassembly of hundreds. Runs are bounded so a
// file sparsely scattered through a huge segment degrades to per-frame
// reads, never to reading the whole segment.
//
// Frames below unverifiedTo were indexed from a snapshot and have never
// been CRC-checked; they are verified here, on first touch — read time
// is where corruption under a snapshot surfaces.
func (sh *shard) readChunks(metas []chunkMeta, epoch uint64) ([]*flash.Chunk, error) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.epoch != epoch {
		return nil, errEpochChanged
	}
	// Visit frames in disk order (supersession and compaction can leave a
	// file's chunks out of offset order) without reordering the output.
	order := make([]int, len(metas))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return metas[order[a]].offset < metas[order[b]].offset })

	const (
		maxGap = 16 << 10 // tolerate this much dead/foreign data inside a run
		maxRun = 1 << 20  // cap a single read
	)
	out := make([]*flash.Chunk, len(metas))
	for i := 0; i < len(order); {
		first := metas[order[i]]
		runStart := first.offset - frameHeaderSize
		runEnd := first.offset + int64(first.length)
		j := i + 1
		for j < len(order) {
			next := metas[order[j]]
			if next.offset-frameHeaderSize-runEnd > maxGap ||
				next.offset+int64(next.length)-runStart > maxRun {
				break
			}
			runEnd = next.offset + int64(next.length)
			j++
		}
		buf := make([]byte, runEnd-runStart)
		if _, err := sh.f.ReadAt(buf, runStart); err != nil {
			return nil, fmt.Errorf("archive: reading chunks at %d: %w", runStart, err)
		}
		for k := i; k < j; k++ {
			m := metas[order[k]]
			payload := buf[m.offset-runStart : m.offset-runStart+int64(m.length)]
			if m.offset-frameHeaderSize < sh.unverifiedTo {
				hdr := buf[m.offset-frameHeaderSize-runStart:]
				if int32(binary.BigEndian.Uint32(hdr)) != m.length ||
					crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:]) {
					return nil, fmt.Errorf("archive: chunk at %d failed CRC (segment corrupted)", m.offset)
				}
			}
			c, n, err := flash.DecodeRecord(payload)
			if err != nil || n != len(payload) {
				return nil, fmt.Errorf("archive: decoding chunk at %d: %v", m.offset, err)
			}
			out[order[k]] = c
		}
		i = j
	}
	return out, nil
}

// stats snapshots shard-level totals.
func (sh *shard) stats() (files, chunks int, bytes, segBytes, recovered, superseded int64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, fm := range sh.files {
		files++
		chunks += len(fm.chunks)
		bytes += fm.bytes
	}
	return files, chunks, bytes, sh.size, sh.recoveredBytes, sh.supersededBytes
}

// closeFiles syncs and closes the segment file. Runs after the writer
// goroutine has exited.
func (sh *shard) closeFiles() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return nil
	}
	err := sh.f.Sync()
	if cerr := sh.f.Close(); err == nil {
		err = cerr
	}
	sh.f = nil
	return err
}
