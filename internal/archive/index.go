package archive

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"enviromic/internal/flash"
	"enviromic/internal/sim"
)

// chunkMeta is the in-memory index entry for one archived chunk: enough
// metadata to answer listings, interval queries, and gap math without
// touching disk, plus the segment location to fetch the payload when a
// reassembly actually needs bytes.
type chunkMeta struct {
	offset int64 // frame payload offset in the shard segment
	start  sim.Time
	end    sim.Time
	origin int32
	length int32 // payload length (compact record size)
	seq    uint32
}

// fileMeta aggregates one distributed file's archived chunks.
type fileMeta struct {
	id      flash.FileID
	start   sim.Time // min chunk start
	end     sim.Time // max chunk end
	bytes   int64    // payload bytes (audio only, headers excluded)
	version uint64   // bumped on every ingest that adds chunks; guards the reassembly cache
	chunks  []chunkMeta
	seen    map[uint64]struct{} // (origin, seq) dedup keys
	origins map[int32]struct{}
}

// dedupKey packs (origin, seq) into one map key. File identity is implied
// by the enclosing fileMeta.
func dedupKey(origin int32, seq uint32) uint64 {
	return uint64(uint32(origin))<<32 | uint64(seq)
}

// gapsIn computes uncovered stretches longer than tolerance over a set of
// chunk spans, mirroring retrieval.File.Gaps (time-major sort, cursor
// sweep) so the archive and the in-field mule agree on what "a gap" is.
func gapsIn(chunks []chunkMeta, tolerance time.Duration) []Gap {
	if len(chunks) == 0 {
		return nil
	}
	sorted := make([]chunkMeta, len(chunks))
	copy(sorted, chunks)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.seq < b.seq
	})
	var gaps []Gap
	cursor := sorted[0].end
	for _, c := range sorted[1:] {
		if c.start.Sub(cursor) > tolerance {
			gaps = append(gaps, Gap{Start: cursor, End: c.start})
		}
		if c.end > cursor {
			cursor = c.end
		}
	}
	return gaps
}

// gapSpan sums gap durations.
func gapSpan(gaps []Gap) time.Duration {
	var d time.Duration
	for _, g := range gaps {
		d += g.End.Sub(g.Start)
	}
	return d
}

// shard owns one segment file and the indexes over it. Files map to
// shards by ID (fileID mod shard count), so a shard is authoritative for
// its files and shards never coordinate: ingest batches and queries
// parallelize across shards, serialized only within one.
type shard struct {
	id   int
	path string

	mu   sync.RWMutex
	f    *os.File
	size int64
	// files is the primary index; byOrigin and the byStart/prefixMaxEnd
	// pair are secondary indexes maintained on ingest.
	files    map[flash.FileID]*fileMeta
	byOrigin map[int32]map[flash.FileID]struct{}
	// byStart holds files sorted by span start; prefixMaxEnd[i] is the
	// max span end over byStart[:i+1]. Together they answer interval
	// stabbing queries ("files overlapping [from,to)") with a binary
	// search plus a walk that stops at the first prefix whose max end
	// falls below the window — no segment scan, no full index scan.
	byStart      []*fileMeta
	prefixMaxEnd []sim.Time

	recoveredBytes int64 // bytes truncated away by open-time recovery
}

// openShard opens (creating if absent) the shard's segment file, scans it
// to rebuild the indexes, and truncates any torn tail.
func openShard(id int, path string) (*shard, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:       id,
		path:     path,
		f:        f,
		files:    make(map[flash.FileID]*fileMeta),
		byOrigin: make(map[int32]map[flash.FileID]struct{}),
	}
	valid, err := scanSegment(f, func(c *flash.Chunk, off int64, length int32) {
		sh.indexChunk(c, off, length)
		flash.FreeChunk(c) // the index keeps metadata only
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archive: scanning %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > valid {
		sh.recoveredBytes = st.Size() - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("archive: truncating torn tail of %s: %w", path, err)
		}
	}
	sh.size = valid
	sh.rebuildInterval()
	return sh, nil
}

// indexChunk records one chunk's metadata. Caller holds mu (or is the
// single-threaded open scan). Duplicates are the caller's problem: ingest
// checks seen before appending; the open scan never sees duplicates
// because ingest never wrote them.
func (sh *shard) indexChunk(c *flash.Chunk, off int64, length int32) {
	fm := sh.files[c.File]
	if fm == nil {
		fm = &fileMeta{
			id:      c.File,
			start:   c.Start,
			end:     c.End,
			seen:    make(map[uint64]struct{}),
			origins: make(map[int32]struct{}),
		}
		sh.files[c.File] = fm
	}
	fm.chunks = append(fm.chunks, chunkMeta{
		offset: off, start: c.Start, end: c.End,
		origin: c.Origin, length: length, seq: c.Seq,
	})
	fm.seen[dedupKey(c.Origin, c.Seq)] = struct{}{}
	fm.origins[c.Origin] = struct{}{}
	fm.bytes += int64(len(c.Data))
	if c.Start < fm.start {
		fm.start = c.Start
	}
	if c.End > fm.end {
		fm.end = c.End
	}
	m := sh.byOrigin[c.Origin]
	if m == nil {
		m = make(map[flash.FileID]struct{})
		sh.byOrigin[c.Origin] = m
	}
	m[fm.id] = struct{}{}
}

// rebuildInterval re-sorts the interval index. Caller holds mu (write) or
// is the open scan. O(files log files) per ingest batch, amortized cheap
// next to the disk write.
func (sh *shard) rebuildInterval() {
	sh.byStart = sh.byStart[:0]
	for _, fm := range sh.files {
		sh.byStart = append(sh.byStart, fm)
	}
	sort.Slice(sh.byStart, func(i, j int) bool {
		a, b := sh.byStart[i], sh.byStart[j]
		if a.start != b.start {
			return a.start < b.start
		}
		return a.id < b.id
	})
	sh.prefixMaxEnd = sh.prefixMaxEnd[:0]
	var max sim.Time
	for _, fm := range sh.byStart {
		if fm.end > max {
			max = fm.end
		}
		sh.prefixMaxEnd = append(sh.prefixMaxEnd, max)
	}
}

// info builds a FileInfo snapshot. Caller holds mu (read).
func (sh *shard) info(fm *fileMeta, tolerance time.Duration) FileInfo {
	origins := make([]int32, 0, len(fm.origins))
	for o := range fm.origins {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	return FileInfo{
		ID:      fm.id,
		Start:   fm.start,
		End:     fm.end,
		Chunks:  len(fm.chunks),
		Bytes:   fm.bytes,
		Origins: origins,
		Gaps:    len(gapsIn(fm.chunks, tolerance)),
	}
}

// query collects files overlapping [from,to) whose origin set intersects
// origins (nil origins = no filter), using the interval index. from/to
// both zero means unbounded, matching retrieval.Query semantics.
func (sh *shard) query(from, to sim.Time, origins map[int32]bool, tolerance time.Duration) []FileInfo {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []FileInfo
	bounded := from != 0 || to != 0
	ub := len(sh.byStart)
	if bounded && to != 0 {
		ub = sort.Search(len(sh.byStart), func(i int) bool { return sh.byStart[i].start >= to })
	}
	for i := ub - 1; i >= 0; i-- {
		if bounded && sh.prefixMaxEnd[i] <= from {
			break // nothing earlier can reach into the window
		}
		fm := sh.byStart[i]
		if bounded && fm.end <= from {
			continue
		}
		if len(origins) > 0 && !intersects(fm.origins, origins) {
			continue
		}
		out = append(out, sh.info(fm, tolerance))
	}
	return out
}

func intersects(have map[int32]struct{}, want map[int32]bool) bool {
	for o := range want {
		if _, ok := have[o]; ok {
			return true
		}
	}
	return false
}

// fileChunks returns a copy of the file's chunk metadata and its cache
// version; ok is false for unknown files.
func (sh *shard) fileChunks(id flash.FileID) (metas []chunkMeta, version uint64, ok bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return nil, 0, false
	}
	metas = make([]chunkMeta, len(fm.chunks))
	copy(metas, fm.chunks)
	return metas, fm.version, true
}

// gaps computes the file's gaps at the given tolerance from index
// metadata alone (no disk reads).
func (sh *shard) gaps(id flash.FileID, tolerance time.Duration) ([]Gap, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fm := sh.files[id]
	if fm == nil {
		return nil, false
	}
	return gapsIn(fm.chunks, tolerance), true
}

// readChunk fetches one chunk payload from the segment (pread, safe under
// concurrent appends since frames are immutable once written).
func (sh *shard) readChunk(m chunkMeta) (*flash.Chunk, error) {
	buf := make([]byte, m.length)
	if _, err := sh.f.ReadAt(buf, m.offset); err != nil {
		return nil, fmt.Errorf("archive: reading chunk at %d: %w", m.offset, err)
	}
	c, n, err := flash.DecodeRecord(buf)
	if err != nil || n != len(buf) {
		return nil, fmt.Errorf("archive: decoding chunk at %d: %v", m.offset, err)
	}
	return c, nil
}

// ingest appends the batch's non-duplicate chunks to the segment and
// indexes them. It returns per-file deltas plus added/duplicate counts.
// The write is a single append of the batch's frames; index entries are
// committed only after the write succeeds, so index and disk agree even
// on error.
func (sh *shard) ingest(batch []*flash.Chunk, tolerance time.Duration, syncAfter bool) (deltas []FileDelta, added, dups int, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	type pending struct {
		c   *flash.Chunk
		off int64
		n   int32
	}
	type batchKey struct {
		file flash.FileID
		key  uint64
	}
	var (
		buf       []byte
		pendings  []pending
		touched   = make(map[flash.FileID]*FileDelta)
		order     []flash.FileID
		batchSeen = make(map[batchKey]struct{})
	)
	touch := func(id flash.FileID) *FileDelta {
		d := touched[id]
		if d == nil {
			d = &FileDelta{File: id}
			if fm := sh.files[id]; fm != nil {
				before := gapsIn(fm.chunks, tolerance)
				d.GapsBefore = len(before)
				d.GapSpanBefore = gapSpan(before)
			}
			touched[id] = d
			order = append(order, id)
		}
		return d
	}
	for _, c := range batch {
		if c == nil {
			continue
		}
		d := touch(c.File)
		fm := sh.files[c.File]
		key := dedupKey(c.Origin, c.Seq)
		if fm != nil {
			if _, dup := fm.seen[key]; dup {
				d.Duplicates++
				dups++
				continue
			}
		}
		// Duplicates inside one batch: the first occurrence is in
		// pendings but not yet in seen, so track batch-local keys too.
		bk := batchKey{c.File, key}
		if _, dup := batchSeen[bk]; dup {
			d.Duplicates++
			dups++
			continue
		}
		batchSeen[bk] = struct{}{}
		off := sh.size + int64(len(buf)) + frameHeaderSize
		var aerr error
		buf, aerr = appendFrame(buf, c)
		if aerr != nil {
			return nil, 0, 0, aerr
		}
		pendings = append(pendings, pending{c: c, off: off, n: int32(c.RecordSize())})
		d.Added++
		added++
	}
	if len(buf) > 0 {
		if _, werr := sh.f.WriteAt(buf, sh.size); werr != nil {
			return nil, 0, 0, fmt.Errorf("archive: appending to %s: %w", sh.path, werr)
		}
		if syncAfter {
			if serr := sh.f.Sync(); serr != nil {
				return nil, 0, 0, serr
			}
		}
		sh.size += int64(len(buf))
		for _, p := range pendings {
			sh.indexChunk(p.c, p.off, p.n)
		}
		for id := range touched {
			if fm := sh.files[id]; fm != nil && touched[id].Added > 0 {
				fm.version++
			}
		}
		sh.rebuildInterval()
	}
	for _, id := range order {
		d := touched[id]
		if fm := sh.files[id]; fm != nil {
			after := gapsIn(fm.chunks, tolerance)
			d.GapsAfter = len(after)
			d.GapSpanAfter = gapSpan(after)
		}
		deltas = append(deltas, *d)
	}
	return deltas, added, dups, nil
}

// stats snapshots shard-level totals.
func (sh *shard) stats() (files, chunks int, bytes, segBytes, recovered int64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, fm := range sh.files {
		files++
		chunks += len(fm.chunks)
		bytes += fm.bytes
	}
	return files, chunks, bytes, sh.size, sh.recoveredBytes
}

// sync flushes the segment to stable storage and returns its durable size.
func (sh *shard) sync() (int64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.f.Sync(); err != nil {
		return 0, err
	}
	return sh.size, nil
}

// close syncs and closes the segment file.
func (sh *shard) close() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		return nil
	}
	err := sh.f.Sync()
	if cerr := sh.f.Close(); err == nil {
		err = cerr
	}
	sh.f = nil
	return err
}
