package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"enviromic/internal/flash"
)

// mkChunkN is mkChunk with an explicit payload size (identity bytes
// followed by padding), for supersession and compaction workloads.
func mkChunkN(file flash.FileID, origin int32, seq uint32, startSec, endSec float64, payload int) *flash.Chunk {
	c := mkChunk(file, origin, seq, startSec, endSec)
	data := make([]byte, payload)
	copy(data, c.Data)
	for i := len(c.Data); i < payload; i++ {
		data[i] = byte(i)
	}
	c.Data = data
	return c
}

// seedChunks builds a deterministic multi-file, multi-origin workload.
func seedChunks(files, perFile int) []*flash.Chunk {
	var out []*flash.Chunk
	for f := 1; f <= files; f++ {
		for i := 0; i < perFile; i++ {
			out = append(out, mkChunkN(flash.FileID(f), int32(f%5+1), uint32(i),
				float64(i), float64(i+1), 8+(f+i)%32))
		}
	}
	return out
}

// storeFingerprint captures everything query-visible about a store:
// listings, per-file gap sets, and every reassembled payload byte.
func storeFingerprint(t *testing.T, s *Store) string {
	t.Helper()
	var b []byte
	for _, fi := range s.Files() {
		b = append(b, []byte(fmt.Sprintf("%+v\n", fi))...)
		gaps, err := s.Gaps(fi.ID, 0)
		if err != nil {
			t.Fatalf("Gaps(%d): %v", fi.ID, err)
		}
		b = append(b, []byte(fmt.Sprintf("gaps=%v\n", gaps))...)
		f, err := s.File(fi.ID)
		if err != nil {
			t.Fatalf("File(%d): %v", fi.ID, err)
		}
		for _, c := range f.Chunks {
			b = append(b, []byte(fmt.Sprintf("%d/%d/%d %d %d %x\n",
				c.File, c.Origin, c.Seq, c.Start, c.End, c.Data))...)
		}
	}
	return string(b)
}

// TestSnapshotRoundTrip: a close-time snapshot must load on reopen and
// produce exactly the state a full rescan builds.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 4})
	mustIngest(t, s, seedChunks(13, 17))
	want := storeFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap := openTest(t, dir, Options{})
	got := storeFingerprint(t, snap)
	loads := snap.Stats().Counters["open.snapshot_loads"]
	snap.Close()
	if loads != 4 {
		t.Fatalf("snapshot_loads = %d, want 4", loads)
	}
	if got != want {
		t.Fatalf("snapshot-loaded store differs from original:\n--- want\n%s\n--- got\n%s", want, got)
	}

	rescan := openTest(t, dir, Options{NoSnapshots: true})
	defer rescan.Close()
	if got := storeFingerprint(t, rescan); got != want {
		t.Fatalf("rescan store differs from snapshot store")
	}
	if n := rescan.Stats().Counters["open.snapshot_loads"]; n != 0 {
		t.Fatalf("NoSnapshots open loaded a snapshot (%d)", n)
	}
}

// TestSnapshotTailReplay: chunks ingested after the last checkpoint are
// recovered by replaying the segment tail, not lost.
func TestSnapshotTailReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 2})
	mustIngest(t, s, seedChunks(6, 10))
	if err := s.Sync(); err != nil { // writes snapshots covering the first 60 chunks
		t.Fatalf("Sync: %v", err)
	}
	mustIngest(t, s, []*flash.Chunk{
		mkChunk(1, 9, 100, 100, 101),
		mkChunk(2, 9, 100, 100, 101),
	})
	want := storeFingerprint(t, s)
	s.crashClose() // no close-time snapshot: the tail exists only in the segments

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Counters["open.snapshot_loads"] != 2 {
		t.Fatalf("snapshot_loads = %d, want 2", st.Counters["open.snapshot_loads"])
	}
	if st.Counters["open.replayed_chunks"] != 2 {
		t.Fatalf("replayed_chunks = %d, want 2", st.Counters["open.replayed_chunks"])
	}
	if got := storeFingerprint(t, s2); got != want {
		t.Fatalf("replayed store differs from pre-crash store")
	}
}

// TestSnapshotCorruptionFallsBack: any byte flip in a snapshot must be
// detected and answered with a full rescan, never wrong indexes.
func TestSnapshotCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1})
	mustIngest(t, s, seedChunks(5, 8))
	want := storeFingerprint(t, s)
	s.Close()

	idx := filepath.Join(dir, "shard-000.idx")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	// Flip a byte in every region: header magic, covered offset, payload.
	for _, off := range []int{0, 16, snapshotHeaderSize + 9, len(data) - 1} {
		corrupted := append([]byte(nil), data...)
		corrupted[off] ^= 0xFF
		if err := os.WriteFile(idx, corrupted, 0o644); err != nil {
			t.Fatalf("write snapshot: %v", err)
		}
		s2 := openTest(t, dir, Options{})
		if n := s2.Stats().Counters["open.snapshot_fallbacks"]; n != 1 {
			t.Fatalf("offset %d: snapshot_fallbacks = %d, want 1", off, n)
		}
		if got := storeFingerprint(t, s2); got != want {
			t.Fatalf("offset %d: fallback store differs from original", off)
		}
		s2.crashClose() // don't rewrite the snapshot between iterations
	}
}

// TestPeriodicCheckpoint: crossing CheckpointBytes must write a snapshot
// without any Sync/Close, and a crash afterwards recovers from it.
func TestPeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 1, CheckpointBytes: 4 << 10})
	mustIngest(t, s, seedChunks(4, 40)) // ~160 chunks ≫ 4 KiB of frames
	// Ingest replies before the writer's checkpoint check runs; a ctl
	// round-trip waits out the writer's current loop iteration.
	s.shards[0].runCtl(func() {})
	if n := s.Stats().Counters["checkpoint.writes"]; n == 0 {
		t.Fatalf("no periodic checkpoint after %d bytes", s.Stats().SegmentBytes)
	}
	want := storeFingerprint(t, s)
	s.crashClose()

	s2 := openTest(t, dir, Options{})
	defer s2.Close()
	if n := s2.Stats().Counters["open.snapshot_loads"]; n != 1 {
		t.Fatalf("snapshot_loads = %d, want 1", n)
	}
	if got := storeFingerprint(t, s2); got != want {
		t.Fatalf("store recovered from periodic checkpoint differs")
	}
}

// TestCrashMidCheckpoint kills the checkpoint at each fsync/rename
// boundary; the reopened store must match a never-checkpointed reference
// exactly (the old snapshot or a scan covers for the torn one).
func TestCrashMidCheckpoint(t *testing.T) {
	for _, point := range []string{"checkpoint:temp-written", "checkpoint:temp-synced"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{Shards: 2})
			mustIngest(t, s, seedChunks(8, 12))
			want := storeFingerprint(t, s)

			killed := fmt.Errorf("killed at %s", point)
			s.env.checkpointHook = func(shard int, p string) error {
				if p == point {
					return killed
				}
				return nil
			}
			if err := s.Sync(); err == nil {
				t.Fatalf("Sync survived the injected kill")
			}
			s.crashClose()

			s2 := openTest(t, dir, Options{})
			defer s2.Close()
			if got := storeFingerprint(t, s2); got != want {
				t.Fatalf("store after crash at %s differs from reference", point)
			}
		})
	}
}

// TestSnapshotEquivalentIndexes compares the full in-memory index state
// (not just query output) between a snapshot load and a rescan.
func TestSnapshotEquivalentIndexes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{Shards: 3})
	mustIngest(t, s, seedChunks(9, 11))
	// Supersede a few chunks so dead bytes and replacements are covered.
	mustIngest(t, s, []*flash.Chunk{
		mkChunkN(1, 1%5+1, 0, 0, 1, 64),
		mkChunkN(2, 2%5+1, 3, 3, 4, 64),
	})
	s.Close()

	snap := openTest(t, dir, Options{})
	defer snap.Close()
	scan := openTest(t, dir, Options{NoSnapshots: true})
	defer scan.Close()
	for i := range snap.shards {
		a, b := snap.shards[i], scan.shards[i]
		if a.supersededBytes != b.supersededBytes {
			t.Fatalf("shard %d supersededBytes: snapshot %d, scan %d", i, a.supersededBytes, b.supersededBytes)
		}
		if len(a.files) != len(b.files) {
			t.Fatalf("shard %d file count: snapshot %d, scan %d", i, len(a.files), len(b.files))
		}
		for id, fa := range a.files {
			fb := b.files[id]
			if fb == nil {
				t.Fatalf("shard %d: file %d only in snapshot index", i, id)
			}
			if fa.start != fb.start || fa.end != fb.end || fa.bytes != fb.bytes {
				t.Fatalf("file %d summary differs: %+v vs %+v", id, fa, fb)
			}
			if !reflect.DeepEqual(fa.chunks, fb.chunks) {
				t.Fatalf("file %d chunk metadata differs", id)
			}
			if !reflect.DeepEqual(fa.origins, fb.origins) {
				t.Fatalf("file %d origins differ", id)
			}
			// The snapshot path leaves seen nil until first ingest; after
			// ensureSeen both must agree.
			fa.ensureSeen()
			fb.ensureSeen()
			if !reflect.DeepEqual(fa.seen, fb.seen) {
				t.Fatalf("file %d dedup maps differ", id)
			}
		}
	}
}
