#!/bin/sh
# Regenerates BENCH_archive_http.json — the archive's concurrent-path
# numbers: the 1M-chunk open bench (snapshot vs rescan) plus HTTP ingest
# throughput and query latency percentiles at >= 1000 concurrent
# clients, all measured through a real TCP listener.
#
# Afterwards, re-runs the in-process archive benchmarks best-of-3 and
# FAILS if any baseline recorded in BENCH_archive.json regressed by more
# than 2% in ns/op — the concurrency work must not tax the simple paths.
# Usage: scripts/archive_load.sh [output-file]
set -e
out="${1:-BENCH_archive_http.json}"
cd "$(dirname "$0")/.."

# The query phase holds ~1k concurrent sockets on each side of the
# loopback; make sure the fd limit clears that with margin.
limit=$(ulimit -n)
if [ "$limit" != "unlimited" ] && [ "$limit" -lt 4096 ]; then
    ulimit -n 4096 || {
        echo "archive_load: cannot raise fd limit above $limit" >&2
        exit 1
    }
fi

go run ./cmd/enviromic-archive-load -open-bench 1000000 -out "$out"
echo "wrote $out"

# ---- benchmark-diff gate ---------------------------------------------
# Every benchmark with a row in BENCH_archive.json must stay within 2%
# ns/op, best of 3 runs (single runs jitter well past 2% on small ops).
[ -f BENCH_archive.json ] || { echo "no BENCH_archive.json baseline; skipping gate"; exit 0; }

raw=$(go test -run '^$' -bench 'Archive' -benchtime 0.5s -count 3 ./internal/archive/ 2>&1)
echo "$raw" | grep -E '^Benchmark' | awk '
{
  name=$1; sub(/-[0-9]+$/, "", name)
  for (i=2; i<=NF; i++) if ($(i+1) == "ns/op") ns=$i
  if (!(name in best) || ns < best[name]) best[name] = ns
}
END { for (n in best) printf "%s %s\n", n, best[n] }
' > /tmp/archive_bench_new.$$

fail=0
grep -o '"name": "[^"]*", "iters": [0-9]*, "ns_per_op": [0-9.]*' BENCH_archive.json |
sed 's/"name": "\([^"]*\)".*"ns_per_op": \([0-9.]*\)/\1 \2/' |
while read -r name base_ns; do
    new_ns=$(awk -v n="$name" '$1 == n { print $2 }' /tmp/archive_bench_new.$$)
    if [ -z "$new_ns" ]; then
        echo "GATE: $name missing from fresh run" >&2
        touch /tmp/archive_bench_fail.$$
        continue
    fi
    awk -v b="$base_ns" -v n="$new_ns" -v name="$name" 'BEGIN {
        d = (n / b - 1) * 100
        printf "%-40s %12.0f ns/op vs baseline %12.0f (%+.2f%%)\n", name, n, b, d
        if (d > 2) exit 1
    }' || touch /tmp/archive_bench_fail.$$
done
[ -f /tmp/archive_bench_fail.$$ ] && fail=1
rm -f /tmp/archive_bench_new.$$ /tmp/archive_bench_fail.$$
if [ "$fail" = 1 ]; then
    echo "FAIL: an archive benchmark regressed more than 2% vs BENCH_archive.json" >&2
    exit 1
fi
echo "gate passed: all archive benchmarks within 2% of BENCH_archive.json"
