#!/bin/sh
# Benchmarks the 10k-mote city scenario (DESIGN.md §14) on the serial and
# sharded engines and records the wall-clock comparison in BENCH_city.json:
#   - one simulated hour, ~10.4k motes, default city workload;
#   - -shards 1 vs -shards 4 with identical seeds;
#   - the two runs' stdout must be byte-identical (the determinism
#     contract of core.Config.Shards) — any diff FAILS the script.
# The >= 2.5x speedup acceptance gate only makes sense with real
# parallelism, so it is enforced only when the host has >= 4 CPUs; on
# smaller hosts the script still records honest numbers plus the core
# count so the reader can judge them.
# Usage: scripts/bench_city.sh [output-file]
#   CITY_DURATION=5m scripts/bench_city.sh   # reduced smoke variant
set -e
out="${1:-BENCH_city.json}"
duration="${CITY_DURATION:-1h}"
cd "$(dirname "$0")/.."

cores=$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null | head -1 )
[ -n "$cores" ] || cores=1

bin=$(mktemp -t enviromic-sim.XXXXXX)
serial_out=$(mktemp -t city-serial.XXXXXX)
sharded_out=$(mktemp -t city-sharded.XXXXXX)
trap 'rm -f "$bin" "$serial_out" "$sharded_out"' EXIT
go build -o "$bin" ./cmd/enviromic-sim

run() { # run <shards> <outfile>; prints wall seconds
    t0=$(date +%s%N)
    "$bin" -scenario city -duration "$duration" -shards "$1" > "$2"
    t1=$(date +%s%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.2f", (b - a) / 1e9 }'
}

echo "city: serial run (-shards 1, $duration simulated)..."
serial_s=$(run 1 "$serial_out")
echo "  ${serial_s}s wall"
echo "city: sharded run (-shards 4, $duration simulated)..."
sharded_s=$(run 4 "$sharded_out")
echo "  ${sharded_s}s wall"

if ! cmp -s "$serial_out" "$sharded_out"; then
    echo "FAIL: sharded city output differs from serial (determinism break)"
    diff "$serial_out" "$sharded_out" | head -20
    exit 1
fi
echo "outputs byte-identical across engines"

nodes=$(sed -n 's/.* nodes=\([0-9]*\) .*/\1/p' "$serial_out" | head -1)
speedup=$(awk -v s="$serial_s" -v p="$sharded_s" 'BEGIN { printf "%.2f", s / p }')

{
    printf '{\n'
    printf '  "host": "%s",\n' "$(uname -sm)"
    printf '  "cores": %s,\n' "$cores"
    printf '  "scenario": "city",\n'
    printf '  "nodes": %s,\n' "${nodes:-0}"
    printf '  "simulated": "%s",\n' "$duration"
    printf '  "serial_wall_s": %s,\n' "$serial_s"
    printf '  "shards4_wall_s": %s,\n' "$sharded_s"
    printf '  "speedup": %s,\n' "$speedup"
    printf '  "outputs_identical": true,\n'
    printf '  "speedup_gate": "%s"\n' \
        "$([ "$cores" -ge 4 ] && echo ">= 2.5x enforced" || echo "skipped: $cores core(s), need >= 4 for parallel speedup")"
    printf '}\n'
} > "$out"
echo "wrote $out (cores=$cores speedup=${speedup}x)"

if [ "$cores" -ge 4 ]; then
    awk -v sp="$speedup" 'BEGIN {
        if (sp < 2.5) { printf "FAIL: speedup %.2fx < 2.5x on a %s-core host\n", sp, "'"$cores"'"; exit 1 }
        printf "speedup gate passed: %.2fx >= 2.5x\n", sp
    }'
else
    echo "speedup gate skipped: host has $cores core(s); shards cannot run in parallel"
fi
