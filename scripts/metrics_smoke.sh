#!/bin/sh
# End-to-end smoke test for the /metrics telemetry plumbing:
#   1. run a sharded indoor simulation with -http and scrape /metrics
#      mid-run: the PDES series (per-shard events, windows, barriers,
#      barrier-wait histogram) and the radio counters must be present
#      and advancing,
#   2. serve an archive over HTTP with -access-log and scrape /metrics:
#      the per-endpoint HTTP series, the store gauges, and the pipeline
#      histograms must be exposed, and each request must produce one
#      structured JSON log line,
#   3. run a small enviromic-archive-load storm, which itself scrapes
#      /metrics and cross-checks the client p99 against the server-side
#      endpoint histogram (the run fails on gross disagreement).
# Exits non-zero on the first failure. Usage: scripts/metrics_smoke.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-metrics-smoke.$$"
mkdir -p "$tmp"
sim_pid=""
server_pid=""
cleanup() {
    [ -n "$sim_pid" ] && kill "$sim_pid" 2> /dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/sim" ./cmd/enviromic-sim
go build -o "$tmp/archive" ./cmd/enviromic-archive
go build -o "$tmp/load" ./cmd/enviromic-archive-load

# wait_addr <logfile> <sed-pattern> <pid>: poll until the server
# announces its bound address, echo it.
wait_addr() {
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n "$2" "$1")
        [ -n "$addr" ] && break
        kill -0 "$3" 2> /dev/null || {
            echo "FAIL: process exited before announcing its address" >&2
            cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "FAIL: no address announced" >&2; cat "$1" >&2; exit 1; }
    echo "$addr"
}

echo "== 1. sharded simulation exposes PDES + radio series on /metrics"
# The duration is deliberately enormous: the scrape happens mid-run and
# the process is killed once the series have advanced.
"$tmp/sim" -scenario indoor -duration 2000h -shards 2 -seed 3 \
    -http 127.0.0.1:0 > "$tmp/sim.out" 2>&1 &
sim_pid=$!
base=$(wait_addr "$tmp/sim.out" 's|debug http on \(http://[0-9.:]*\) .*|\1|p' "$sim_pid")

ok=""
for _ in $(seq 1 100); do
    curl -fsS "$base/metrics" > "$tmp/sim.metrics" 2> /dev/null || { sleep 0.1; continue; }
    if grep -Eq '^enviromic_sim_windows_total [1-9]' "$tmp/sim.metrics" &&
        grep -Eq '^enviromic_radio_tx_frames_total [1-9]' "$tmp/sim.metrics"; then
        ok=1
        break
    fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "FAIL: sim series never advanced"; cat "$tmp/sim.metrics"; exit 1; }

for series in \
    'enviromic_sim_shard_events_total\{shard="0"\}' \
    'enviromic_sim_shard_events_total\{shard="1"\}' \
    'enviromic_sim_barriers_total' \
    'enviromic_sim_barrier_wait_seconds_bucket' \
    'enviromic_sim_deposit_lane_depth_bucket' \
    'enviromic_sim_time_seconds' \
    'enviromic_sim_progress' \
    'enviromic_radio_drops_total\{cause="loss"\}'; do
    grep -Eq "^$series" "$tmp/sim.metrics" || {
        echo "FAIL: series $series missing from sim /metrics"; exit 1; }
done
# Every exposed family carries HELP and TYPE headers.
grep -q '^# HELP enviromic_sim_windows_total ' "$tmp/sim.metrics" || {
    echo "FAIL: HELP line missing"; exit 1; }
grep -Eq '^# TYPE enviromic_sim_barrier_wait_seconds histogram$' "$tmp/sim.metrics" || {
    echo "FAIL: TYPE line missing"; exit 1; }
kill "$sim_pid" && wait "$sim_pid" 2> /dev/null || true
sim_pid=""

echo "== 2. archive server exposes HTTP + store series, -access-log logs"
"$tmp/archive" -dir "$tmp/store" -http 127.0.0.1:0 -access-log \
    > "$tmp/server.out" 2> "$tmp/server.log" &
server_pid=$!
base=$(wait_addr "$tmp/server.out" 's|serving on \(http://[0-9.:]*\) .*|\1|p' "$server_pid")

curl -fsS "$base/files" > /dev/null
curl -fsS "$base/stats" > /dev/null
curl -fsS "$base/metrics" > "$tmp/archive.metrics"

for series in \
    'enviromic_http_requests_total\{.*endpoint="/files".*\} [1-9]' \
    'enviromic_http_request_seconds_bucket\{.*endpoint="/stats"' \
    'enviromic_http_in_flight ' \
    'enviromic_archive_files ' \
    'enviromic_archive_cache_hit_ratio ' \
    'enviromic_archive_ingest_chunks_total ' \
    'enviromic_archive_group_commit_batch_size_bucket' \
    'enviromic_archive_fsync_seconds_bucket'; do
    grep -Eq "^$series" "$tmp/archive.metrics" || {
        echo "FAIL: series $series missing from archive /metrics"; exit 1; }
done
grep -q '"msg":"request"' "$tmp/server.log" || {
    echo "FAIL: -access-log produced no structured log lines"
    cat "$tmp/server.log"; exit 1; }
grep -q '"path":"/files"' "$tmp/server.log" || {
    echo "FAIL: access log missing the /files request"; exit 1; }
kill "$server_pid" && wait "$server_pid" 2> /dev/null || true
server_pid=""

echo "== 3. load storm cross-checks client p99 vs server histogram"
"$tmp/load" -ingest-clients 4 -batches 2 -chunks 16 -clients 8 -requests 25 \
    -shards 2 -out "$tmp/load.json" > /dev/null 2> "$tmp/load.log"
grep -q '"server_p99_ms"' "$tmp/load.json" || {
    echo "FAIL: load result carries no server-side p99"
    cat "$tmp/load.log"; exit 1; }

echo "metrics smoke: OK"
