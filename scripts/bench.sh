#!/bin/sh
# Regenerates the benchmark baselines recorded with each PR that touches
# a hot path:
#   BENCH_erasure.json — the erasure encode/decode micro-benches added
#     with the dispersal mode, the message-plane micro-benches, the
#     radio hot path, the full-figure runs, and the disabled-path guards
#     for both observability layers, re-run with the dispersal code in
#     the tree (migration mode, dispersal off). The pre-dispersal
#     numbers from BENCH_obs.json are embedded as "baseline" for
#     before/after deltas.
# After writing the file, the script diffs BenchmarkIndoorFigureSerial
# against the recorded baseline and FAILS if ns/op or allocs/op
# regressed by more than 2% — the dispersal-off path must stay free,
# exactly as the telemetry-off and tracer-off paths had to before it.
# Usage: scripts/bench.sh [output-file]
set -e
out="${1:-BENCH_erasure.json}"
cd "$(dirname "$0")/.."

# 3s per benchmark: the full-figure benches take ~350ms/op, so 0.5s
# gave them only 2 iterations and ±15% run-to-run noise — far beyond
# the 2% gate below. ~9+ iterations brings them to steady state.
raw=$(go test -run '^$' -bench 'StackDispatch|ChunkSplit|RadioSend|IndoorFigure|Fig06Sweep|TracerDisabled|TelemetryDisabled|Erasure' -benchmem -benchtime 3s . 2>&1)

# The previous PR's BENCH_obs.json is the "before" reference; inline
# its benchmark rows so one file carries the comparison.
baseline="[]"
if [ -f BENCH_obs.json ]; then
    baseline=$(sed -n '/"benchmarks": \[/,/^  \]/p' BENCH_obs.json | sed '1s/.*/[/; $s/.*/]/')
fi

{
    printf '{\n  "host": "%s",\n' "$(uname -sm)"
    printf '  "baseline_source": "BENCH_obs.json (pre-dispersal)",\n'
    printf '  "baseline": %s,\n' "$baseline"
    echo "$raw" | grep -E '^Benchmark' | awk '
BEGIN { printf "  \"benchmarks\": [\n"; first=1 }
{
  name=$1; sub(/-[0-9]+$/, "", name)
  nsop=""; bop=""; allocs=""
  for (i=2; i<=NF; i++) {
    if ($(i+1) == "ns/op") nsop=$i
    if ($(i+1) == "B/op") bop=$i
    if ($(i+1) == "allocs/op") allocs=$i
  }
  if (!first) printf ",\n"
  first=0
  printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, nsop
  if (bop != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop, allocs
  printf "}"
}
END { print "\n  ]\n}" }
'
} > "$out"
echo "wrote $out"

# ---- benchmark-diff gate ---------------------------------------------
# BenchmarkIndoorFigureSerial is the acceptance benchmark: with
# dispersal off (migration mode, the default) it must stay within 2% of
# the pre-dispersal baseline in ns/op and allocs/op. Wall-clock times on
# a shared VM drift 10%+ between recording sessions (every benchmark in
# the suite moves together, including ones no PR touched), so the ns/op
# delta is normalized by the median drift of the CONTROL benchmarks —
# paths this PR does not modify. A real hot-path regression moves
# IndoorFigureSerial relative to the controls; machine drift moves them
# all equally and cancels out. allocs/op is load-independent and is
# compared raw.
if [ -f BENCH_obs.json ]; then
    nsof() { sed -n '/"benchmarks": \[/,$p' "$1" | grep "\"$2\"" | head -1 |
        sed 's/.*"ns_per_op": \([0-9.]*\).*/\1/'; }
    allocsof() { sed -n '/"benchmarks": \[/,$p' "$1" | grep "\"$2\"" | head -1 |
        sed 's/.*"allocs_per_op": \([0-9]*\).*/\1/'; }
    controls="BenchmarkStackDispatch BenchmarkChunkSplit BenchmarkRadioSend36
        BenchmarkRadioSend48 BenchmarkRadioSend200 BenchmarkFig06SweepSerial
        BenchmarkFig06SweepParallel"
    drift=$(for c in $controls; do
        b=$(nsof BENCH_obs.json "$c"); n=$(nsof "$out" "$c")
        [ -n "$b" ] && [ -n "$n" ] && awk -v b="$b" -v n="$n" 'BEGIN { print n / b }'
    done | sort -g | awk '{ r[NR] = $1 } END { print (NR % 2) ? r[(NR+1)/2] : (r[NR/2] + r[NR/2+1]) / 2 }')
    base_ns=$(nsof BENCH_obs.json BenchmarkIndoorFigureSerial)
    base_allocs=$(allocsof BENCH_obs.json BenchmarkIndoorFigureSerial)
    # The gated quantity is the min of 3 fresh steady-state runs — the
    # noise-robust estimator — not the single recording-pass sample.
    gate=$(go test -run '^$' -bench 'IndoorFigureSerial$' -benchmem -benchtime 3s -count 3 . 2>&1 |
        grep '^BenchmarkIndoorFigureSerial')
    new_ns=$(printf '%s\n' "$gate" | awk '{for(i=2;i<=NF;i++) if($(i+1)=="ns/op") print $i}' | sort -g | head -1)
    new_allocs=$(printf '%s\n' "$gate" | awk '{for(i=2;i<=NF;i++) if($(i+1)=="allocs/op") print $i}' | sort -g | head -1)
    awk -v bn="$base_ns" -v nn="$new_ns" -v ba="$base_allocs" -v na="$new_allocs" -v dr="$drift" 'BEGIN {
        fail = 0
        dns = (nn / bn / dr - 1) * 100
        da  = (na / ba - 1) * 100
        printf "control drift (median of unchanged benches): %+.2f%%\n", (dr - 1) * 100
        printf "IndoorFigureSerial ns/op:     %d vs baseline %d (%+.2f%% drift-normalized)\n", nn, bn, dns
        printf "IndoorFigureSerial allocs/op: %d vs baseline %d (%+.2f%%)\n", na, ba, da
        if (dns > 2) { print "FAIL: ns/op regressed more than 2% beyond machine drift"; fail = 1 }
        if (da  > 2) { print "FAIL: allocs/op regressed more than 2%"; fail = 1 }
        exit fail
    }'
fi
