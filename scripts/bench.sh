#!/bin/sh
# Regenerates the benchmark baselines recorded with each PR that touches
# a hot path:
#   BENCH_obs.json — message-plane micro-benches, the radio hot path,
#     the full-figure runs, and the disabled-path guards for both
#     observability layers (nil tracer, nil telemetry), re-run with the
#     metrics registry in the tree (telemetry off). The pre-telemetry
#     numbers from BENCH_trace.json are embedded as "baseline" for
#     before/after deltas.
# After writing the file, the script diffs BenchmarkIndoorFigureSerial
# against the recorded baseline and FAILS if ns/op or allocs/op
# regressed by more than 2% — the telemetry-off path must stay free,
# exactly as the tracer's disabled path had to before it.
# Usage: scripts/bench.sh [output-file]
set -e
out="${1:-BENCH_obs.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'StackDispatch|ChunkSplit|RadioSend|IndoorFigure|Fig06Sweep|TracerDisabled|TelemetryDisabled' -benchmem -benchtime 0.5s . 2>&1)

# The previous PR's BENCH_trace.json is the "before" reference; inline
# its benchmark rows so one file carries the comparison.
baseline="[]"
if [ -f BENCH_trace.json ]; then
    baseline=$(sed -n '/"benchmarks": \[/,/^  \]/p' BENCH_trace.json | sed '1s/.*/[/; $s/.*/]/')
fi

{
    printf '{\n  "host": "%s",\n' "$(uname -sm)"
    printf '  "baseline_source": "BENCH_trace.json (pre-telemetry)",\n'
    printf '  "baseline": %s,\n' "$baseline"
    echo "$raw" | grep -E '^Benchmark' | awk '
BEGIN { printf "  \"benchmarks\": [\n"; first=1 }
{
  name=$1; sub(/-[0-9]+$/, "", name)
  nsop=""; bop=""; allocs=""
  for (i=2; i<=NF; i++) {
    if ($(i+1) == "ns/op") nsop=$i
    if ($(i+1) == "B/op") bop=$i
    if ($(i+1) == "allocs/op") allocs=$i
  }
  if (!first) printf ",\n"
  first=0
  printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, nsop
  if (bop != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop, allocs
  printf "}"
}
END { print "\n  ]\n}" }
'
} > "$out"
echo "wrote $out"

# ---- benchmark-diff gate ---------------------------------------------
# BenchmarkIndoorFigureSerial is the acceptance benchmark: with
# telemetry disabled it must stay within 2% of the pre-telemetry
# baseline in both ns/op and allocs/op.
if [ -f BENCH_trace.json ]; then
    row() { sed -n '/"benchmarks": \[/,$p' "$1" | grep '"BenchmarkIndoorFigureSerial"' | head -1; }
    base_row=$(row BENCH_trace.json)
    new_row=$(row "$out")
    base_ns=$(printf '%s' "$base_row" | sed 's/.*"ns_per_op": \([0-9]*\).*/\1/')
    base_allocs=$(printf '%s' "$base_row" | sed 's/.*"allocs_per_op": \([0-9]*\).*/\1/')
    new_ns=$(printf '%s' "$new_row" | sed 's/.*"ns_per_op": \([0-9]*\).*/\1/')
    new_allocs=$(printf '%s' "$new_row" | sed 's/.*"allocs_per_op": \([0-9]*\).*/\1/')
    awk -v bn="$base_ns" -v nn="$new_ns" -v ba="$base_allocs" -v na="$new_allocs" 'BEGIN {
        fail = 0
        dns = (nn / bn - 1) * 100
        da  = (na / ba - 1) * 100
        printf "IndoorFigureSerial ns/op:     %d vs baseline %d (%+.2f%%)\n", nn, bn, dns
        printf "IndoorFigureSerial allocs/op: %d vs baseline %d (%+.2f%%)\n", na, ba, da
        if (dns > 2) { print "FAIL: ns/op regressed more than 2%"; fail = 1 }
        if (da  > 2) { print "FAIL: allocs/op regressed more than 2%"; fail = 1 }
        exit fail
    }'
fi
