#!/bin/sh
# Regenerates the benchmark baselines recorded with each PR that touches
# a hot path:
#   BENCH_msgplane.json — message-plane micro-benches (kind dispatch,
#     chunk split/free) plus the radio hot path and full-figure runs,
#     with the pre-message-plane numbers from BENCH_radio.json embedded
#     as "baseline" for before/after deltas.
# Usage: scripts/bench.sh [output-file]
# Supersedes the old scripts/bench_radio.sh.
set -e
out="${1:-BENCH_msgplane.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'StackDispatch|ChunkSplit|RadioSend|IndoorFigure|Fig06Sweep' -benchmem -benchtime 0.5s . 2>&1)

# The previous PR's BENCH_radio.json is the "before" reference; inline
# its benchmark rows so one file carries the comparison.
baseline="[]"
if [ -f BENCH_radio.json ]; then
    baseline=$(sed -n '/"benchmarks": \[/,/^  \]/p' BENCH_radio.json | sed '1s/.*/[/; $s/.*/]/')
fi

{
    printf '{\n  "host": "%s",\n' "$(uname -sm)"
    printf '  "baseline_source": "BENCH_radio.json (pre-message-plane)",\n'
    printf '  "baseline": %s,\n' "$baseline"
    echo "$raw" | grep -E '^Benchmark' | awk '
BEGIN { printf "  \"benchmarks\": [\n"; first=1 }
{
  name=$1; sub(/-[0-9]+$/, "", name)
  nsop=""; bop=""; allocs=""
  for (i=2; i<=NF; i++) {
    if ($(i+1) == "ns/op") nsop=$i
    if ($(i+1) == "B/op") bop=$i
    if ($(i+1) == "allocs/op") allocs=$i
  }
  if (!first) printf ",\n"
  first=0
  printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, nsop
  if (bop != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop, allocs
  printf "}"
}
END { print "\n  ]\n}" }
'
} > "$out"
echo "wrote $out"
