#!/bin/sh
# End-to-end smoke test for the protocol tracing pipeline:
#   1. run a 2-minute indoor scenario with -trace into JSONL,
#   2. validate every line against the fixed event schema,
#   3. round-trip the log through enviromic-trace (summary + latency
#      percentiles must include the request->confirm exchange),
#   4. export to Chrome trace-event JSON and check it is Perfetto-shaped.
# Exits non-zero on the first failure. Usage: scripts/trace_smoke.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-trace-smoke.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== 1. traced 2-minute indoor run"
go run ./cmd/enviromic-sim -duration 2m -trace -trace-out "$tmp/run.jsonl" > "$tmp/sim.out"
grep -q '^trace: [1-9][0-9]* events' "$tmp/sim.out" || {
    echo "FAIL: sim reported no trace events"; exit 1; }

echo "== 2. JSONL schema validation"
test -s "$tmp/run.jsonl" || { echo "FAIL: empty trace"; exit 1; }
# Every line must carry exactly the fixed field order the parser and
# external tools rely on: t, k, n, p, f, v1, v2.
bad=$(grep -cvE '^\{"t":[0-9]+,"k":"[a-z0-9.]+","n":-?[0-9]+,"p":-?[0-9]+,"f":[0-9]+,"v1":-?[0-9]+,"v2":-?[0-9]+\}$' "$tmp/run.jsonl" || true)
if [ "$bad" -ne 0 ]; then
    echo "FAIL: $bad JSONL lines do not match the event schema"; exit 1
fi
echo "   $(wc -l < "$tmp/run.jsonl") lines ok"

echo "== 3. enviromic-trace round trip"
go run ./cmd/enviromic-trace -perfetto "$tmp/run.json" "$tmp/run.jsonl" > "$tmp/summary.out"
grep -q '^trace: [1-9][0-9]* events' "$tmp/summary.out" || {
    echo "FAIL: summary did not report events"; exit 1; }
grep -q 'request->confirm' "$tmp/summary.out" || {
    echo "FAIL: latency table is missing the request->confirm exchange"; exit 1; }
grep -q 'events by kind' "$tmp/summary.out" || {
    echo "FAIL: summary is missing the per-kind census"; exit 1; }

echo "== 4. Perfetto export"
grep -q '"traceEvents"' "$tmp/run.json" || {
    echo "FAIL: Chrome trace output lacks traceEvents"; exit 1; }
grep -q '"ph":"X"' "$tmp/run.json" || {
    echo "FAIL: Chrome trace output has no complete spans"; exit 1; }
grep -q '"name":"thread_name"' "$tmp/run.json" || {
    echo "FAIL: Chrome trace output has no per-node tracks"; exit 1; }

echo "trace smoke: OK"
