#!/bin/sh
# Regenerates BENCH_radio.json: the radio hot-path and full-figure
# benchmark baseline recorded with each PR that touches the fast path.
# Usage: scripts/bench_radio.sh [output-file]
set -e
out="${1:-BENCH_radio.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'RadioSend|IndoorFigure|Fig06Sweep' -benchmem -benchtime 0.5s . 2>&1)
echo "$raw" | grep -E '^Benchmark' | awk -v host="$(uname -sm)" '
BEGIN { print "{"; printf "  \"host\": \"%s\",\n  \"benchmarks\": [\n", host; first=1 }
{
  name=$1; sub(/-[0-9]+$/, "", name)
  nsop=""; bop=""; allocs=""
  for (i=2; i<=NF; i++) {
    if ($(i+1) == "ns/op") nsop=$i
    if ($(i+1) == "B/op") bop=$i
    if ($(i+1) == "allocs/op") allocs=$i
  }
  if (!first) printf ",\n"
  first=0
  printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, nsop
  if (bop != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop, allocs
  printf "}"
}
END { print "\n  ]\n}" }
' > "$out"
echo "wrote $out"
