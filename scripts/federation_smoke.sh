#!/bin/sh
# End-to-end smoke test for the multi-basestation federation:
#   1. boot three federated archive stations (full-mesh replication) and
#      one unfederated reference station,
#   2. run the fixed-seed city retrieval twice: tours split round-robin
#      across the three stations, then the identical run flushed whole
#      into the reference,
#   3. wait for anti-entropy to converge every station onto the full
#      holdings, then require each station's /stats to match the
#      reference exactly (files, chunks, bytes — the dedup counters of
#      the merged view),
#   4. diff the federated /files, /query, and /gaps responses against
#      the reference byte for byte, and cmp a /wav export,
#   5. kill one station: a complete file must still come back
#      byte-identical via any survivor,
#   6. ingest fresh data while the station is down, restart it, and
#      require its persisted replication cursor to catch it back up,
#   7. aim the federated query storm at the cluster and record
#      BENCH_federation.json (zero errors required).
# Exits non-zero on the first failure. Usage: scripts/federation_smoke.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-federation-smoke.$$"
mkdir -p "$tmp"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2> /dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/retrieve" ./cmd/enviromic-retrieve
go build -o "$tmp/archive" ./cmd/enviromic-archive
go build -o "$tmp/load" ./cmd/enviromic-archive-load

# Fixed ports derived from the PID keep parallel runs apart; stations
# must know each other's addresses before they start, so :0 won't do.
base_port=$((20000 + $$ % 30000))
p1=$base_port; p2=$((base_port + 1)); p3=$((base_port + 2)); p4=$((base_port + 3))
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"
ref="http://127.0.0.1:$p4"

start_station() { # name port peers logfile
    "$tmp/archive" -dir "$tmp/$1" -http "127.0.0.1:$2" -station "$1" \
        -peers "$3" -repl-interval 200ms -probe-interval 200ms \
        > "$tmp/$4" 2>&1 &
    pids="$pids $!"
}

wait_ready() { # url
    for _ in $(seq 1 100); do
        curl -fsS "$1/stats" > /dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never became ready"; exit 1
}

stat_field() { # url field -> first (top-level) value
    curl -fsS "$1/stats" | sed -n "s/.*\"$2\": \([0-9]*\).*/\1/p" | head -1
}

echo "== 1. boot 3 federated stations + 1 reference"
start_station s1 "$p1" "s2=127.0.0.1:$p2,s3=127.0.0.1:$p3" s1.log
start_station s2 "$p2" "s1=127.0.0.1:$p1,s3=127.0.0.1:$p3" s2.log
start_station s3 "$p3" "s1=127.0.0.1:$p1,s2=127.0.0.1:$p2" s3.log
"$tmp/archive" -dir "$tmp/ref" -http "127.0.0.1:$p4" > "$tmp/ref.log" 2>&1 &
pids="$pids $!"
ref_pid=$!
wait_ready "$u1"; wait_ready "$u2"; wait_ready "$u3"; wait_ready "$ref"

echo "== 2. fixed-seed city tours: split across stations vs whole into reference"
"$tmp/retrieve" -scenario city -duration 30s -seed 7 \
    -archive "$u1,$u2,$u3" > "$tmp/split.out"
grep -Eq 'tour 1 -> http://[0-9.:]*:' "$tmp/split.out" || {
    echo "FAIL: split run did not flush to stations"; cat "$tmp/split.out"; exit 1; }
"$tmp/retrieve" -scenario city -duration 30s -seed 7 \
    -archive "$ref," > "$tmp/whole.out"
ref_chunks=$(stat_field "$ref" chunks)
[ -n "$ref_chunks" ] && [ "$ref_chunks" -gt 0 ] || {
    echo "FAIL: reference archived no chunks"; exit 1; }

echo "== 3. replication convergence: every station -> $ref_chunks chunks"
for u in "$u1" "$u2" "$u3"; do
    ok=""
    for _ in $(seq 1 150); do
        got=$(stat_field "$u" chunks)
        [ "$got" = "$ref_chunks" ] && { ok=1; break; }
        sleep 0.2
    done
    [ -n "$ok" ] || {
        echo "FAIL: $u stuck at $got/$ref_chunks chunks"; exit 1; }
done
# Full holdings everywhere: files/chunks/bytes identical to the
# reference on every station (the dedup counters of the merged view).
ref_sum="$(stat_field "$ref" files) $(stat_field "$ref" chunks) $(stat_field "$ref" bytes)"
for u in "$u1" "$u2" "$u3"; do
    got="$(stat_field "$u" files) $(stat_field "$u" chunks) $(stat_field "$u" bytes)"
    [ "$got" = "$ref_sum" ] || {
        echo "FAIL: $u holdings ($got) != reference ($ref_sum)"; exit 1; }
done

echo "== 4. federated reads == reference, byte for byte"
curl -fsS "$ref/files" > "$tmp/ref-files.json"
fid=$(sed -n 's/.*"id": \([0-9]*\).*/\1/p' "$tmp/ref-files.json" | head -1)
[ -n "$fid" ] || { echo "FAIL: reference lists no files"; exit 1; }
for u in "$u1" "$u2" "$u3"; do
    for path in "/files" "/query?from=0s&to=10m" "/files/$fid" "/files/$fid/gaps"; do
        curl -fsS "$u$path" > "$tmp/fed.json"
        curl -fsS "$ref$path" > "$tmp/ref.json"
        cmp -s "$tmp/fed.json" "$tmp/ref.json" || {
            echo "FAIL: $u$path differs from reference"; exit 1; }
    done
done
curl -fsS "$u1/files/$fid/wav" > "$tmp/fed.wav"
curl -fsS "$ref/files/$fid/wav" > "$tmp/ref.wav"
cmp -s "$tmp/fed.wav" "$tmp/ref.wav" || {
    echo "FAIL: federated WAV differs from reference"; exit 1; }
head -c 4 "$tmp/fed.wav" | grep -q RIFF || {
    echo "FAIL: federated WAV is not a RIFF file"; exit 1; }

echo "== 5. kill s3: complete files via any survivor"
s3_pid=$(echo "$pids" | awk '{print $3}')
kill "$s3_pid" && wait "$s3_pid" 2> /dev/null || true
for u in "$u1" "$u2"; do
    curl -fsS "$u/files" > "$tmp/fed.json"
    cmp -s "$tmp/fed.json" "$tmp/ref-files.json" || {
        echo "FAIL: $u/files incomplete after losing s3"; exit 1; }
    curl -fsS "$u/files/$fid/wav" > "$tmp/fed.wav"
    cmp -s "$tmp/fed.wav" "$tmp/ref.wav" || {
        echo "FAIL: $u WAV not byte-identical after losing s3"; exit 1; }
done

echo "== 6. rejoin: persisted cursor catches s3 back up"
# New data lands at s1 while s3 is down (the grid scenario uses its own
# file IDs, so this strictly grows the holdings).
"$tmp/retrieve" -duration 1m -seed 11 -archive "$u1," > "$tmp/extra.out"
s1_chunks=$(stat_field "$u1" chunks)
[ "$s1_chunks" -gt "$ref_chunks" ] || {
    echo "FAIL: extra ingest did not grow s1"; exit 1; }
start_station s3 "$p3" "s1=127.0.0.1:$p1,s2=127.0.0.1:$p2" s3-rejoin.log
wait_ready "$u3"
grep -q 'recovered:' "$tmp/s3-rejoin.log" && {
    echo "FAIL: s3 restart tore its segments"; exit 1; }
ok=""
for _ in $(seq 1 150); do
    got=$(stat_field "$u3" chunks)
    [ "$got" = "$s1_chunks" ] && { ok=1; break; }
    sleep 0.2
done
[ -n "$ok" ] || { echo "FAIL: s3 stuck at $got/$s1_chunks chunks after rejoin"; exit 1; }

echo "== 7. federated query storm -> BENCH_federation.json"
"$tmp/load" -urls "$u1,$u2,$u3" -clients 50 -requests 10 \
    -out BENCH_federation.json > /dev/null
grep -q '"errors": 0' BENCH_federation.json || {
    echo "FAIL: federated storm saw errors"; cat BENCH_federation.json; exit 1; }
grep -q '"stations": 3' BENCH_federation.json || {
    echo "FAIL: storm did not cover 3 stations"; exit 1; }

echo "federation smoke: OK"
