#!/bin/sh
# Race-detector smoke for the sharded engine: runs the serial-vs-sharded
# byte-identity regressions under -race, which exercises the shard
# worker goroutines, the deposit lanes, and the barrier merge with the
# race detector watching every cross-shard handoff.
# Wired into `make check`; keep it under a minute.
set -e
cd "$(dirname "$0")/.."
go test -race -count=1 \
    -run 'TestShardedMatchesSerial|TestShardsRunMatchesSerialSchedule|TestShardsCrossShardDepositOrdering|TestShardsGlobalLaneExclusive|TestCitySmoke|TestChaosUnderShardsMatchesSerial' \
    ./internal/sim ./internal/core ./internal/experiments ./internal/chaos
echo "shard smoke passed: sharded runs byte-identical under -race"
