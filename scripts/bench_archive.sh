#!/bin/sh
# Regenerates BENCH_archive.json — the basestation archive baselines:
# ingest throughput (cold + all-duplicate), interval/origin query,
# reassembly with cold and warm cache, and index rebuild on open.
# Usage: scripts/bench_archive.sh [output-file]
set -e
out="${1:-BENCH_archive.json}"
cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench 'Archive' -benchmem -benchtime 0.5s ./internal/archive/ 2>&1)

{
    printf '{\n  "host": "%s",\n' "$(uname -sm)"
    echo "$raw" | grep -E '^Benchmark' | awk '
BEGIN { printf "  \"benchmarks\": [\n"; first=1 }
{
  name=$1; sub(/-[0-9]+$/, "", name)
  nsop=""; bop=""; allocs=""; mbs=""
  for (i=2; i<=NF; i++) {
    if ($(i+1) == "ns/op") nsop=$i
    if ($(i+1) == "MB/s") mbs=$i
    if ($(i+1) == "B/op") bop=$i
    if ($(i+1) == "allocs/op") allocs=$i
  }
  if (!first) printf ",\n"
  first=0
  printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, nsop
  if (mbs != "") printf ", \"mb_per_s\": %s", mbs
  if (bop != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bop, allocs
  printf "}"
}
END { print "\n  ]\n}" }
'
} > "$out"
echo "wrote $out"
