#!/bin/sh
# End-to-end smoke test for the fault-injection harness:
#   1. run a leader-crash + loss-burst + partition scenario with the
#      invariant checker on; the crash must land, the partition must cut
#      frames, and the checker must report zero violations,
#   2. re-run the identical command and require byte-identical output
#      (determinism contract: same seed + same scenario => same run),
#   3. run chaos-off with and without -chaos plumbing compiled in the
#      command line and require identical protocol results,
#   4. feed a malformed scenario and require a clean usage failure.
# Exits non-zero on the first failure. Usage: scripts/chaos_smoke.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-chaos-smoke.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT INT TERM

cat > "$tmp/scenario.json" <<'EOF'
{
  "name": "smoke-crash-partition",
  "faults": [
    {"kind": "crash", "at": "90s", "target": "leader"},
    {"kind": "loss", "from": "2m", "to": "3m", "prob": 0.10},
    {"kind": "partition", "from": "3m", "to": "4m",
     "a": [0, 1, 2, 3, 4, 5, 6, 7]}
  ]
}
EOF

echo "== 1. leader crash + loss burst + partition, invariants on"
go run ./cmd/enviromic-sim -duration 6m -seed 5 \
    -chaos "$tmp/scenario.json" -invariants > "$tmp/run1.out"
grep -q 'crash: node=' "$tmp/run1.out" || {
    echo "FAIL: leader crash never fired"; exit 1; }
grep -q 'frames cut by partitions: [1-9]' "$tmp/run1.out" || {
    echo "FAIL: partition cut no frames"; exit 1; }
grep -q 'invariants: OK ([1-9][0-9]* events checked)' "$tmp/run1.out" || {
    echo "FAIL: invariant checker did not report a clean pass"; exit 1; }

echo "== 2. same seed + scenario twice => byte-identical output"
go run ./cmd/enviromic-sim -duration 6m -seed 5 \
    -chaos "$tmp/scenario.json" -invariants > "$tmp/run2.out"
diff "$tmp/run1.out" "$tmp/run2.out" > /dev/null || {
    echo "FAIL: two identical chaos runs diverged"; exit 1; }

echo "== 3. chaos off => identical to a plain run"
go run ./cmd/enviromic-sim -duration 6m -seed 5 > "$tmp/plain.out"
go run ./cmd/enviromic-sim -duration 6m -seed 5 -invariants > "$tmp/inv.out"
grep -q 'invariants: OK' "$tmp/inv.out" || {
    echo "FAIL: plain run failed invariant checking"; exit 1; }
# The invariant report is appended to otherwise-identical output.
n=$(wc -l < "$tmp/plain.out")
head -n "$n" "$tmp/inv.out" | diff - "$tmp/plain.out" > /dev/null || {
    echo "FAIL: -invariants perturbed the simulation"; exit 1; }

echo "== 4. malformed scenario fails cleanly"
echo '{"name": "bad", "faults": [{"kind": "sharknado", "at": "1s"}]}' \
    > "$tmp/bad.json"
if go run ./cmd/enviromic-sim -duration 1m -chaos "$tmp/bad.json" \
    > /dev/null 2> "$tmp/bad.err"; then
    echo "FAIL: malformed scenario was accepted"; exit 1
fi
grep -q 'chaos' "$tmp/bad.err" || {
    echo "FAIL: malformed scenario produced no diagnostic"; exit 1; }

echo "chaos smoke: OK"
