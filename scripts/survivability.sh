#!/bin/sh
# Survivability gate: migration vs erasure-coded dispersal under the
# chaos harness's crash/loss/partition scenarios.
#   1. run the head-to-head matrix (3 scenarios x 2 storage modes, quick
#      indoor scale) and require the PASS gate: dispersal keeps strictly
#      more data retrievable from live nodes than migration in every
#      crash scenario, with zero protocol-invariant violations,
#   2. re-run the identical matrix and require byte-identical output
#      (determinism contract: fixed seed => same matrix),
#   3. run a dispersal-mode simulation end-to-end and require a clean
#      erasure decode summary plus zero invariant violations,
#   4. feed a malformed -rs geometry and require a clean usage failure.
# Exits non-zero on the first failure. Usage: scripts/survivability.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-survivability.$$"
mkdir -p "$tmp"
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "== 1. survivability matrix: dispersal must beat migration under crashes"
go run ./cmd/enviromic-figures -survivability -quick -seed 42 > "$tmp/matrix1.out"
grep -q 'survivability matrix rs=6,4' "$tmp/matrix1.out" || {
    echo "FAIL: matrix header missing"; exit 1; }
grep -q 'survivability gate: PASS (dispersal wins 3/3 crash scenarios' "$tmp/matrix1.out" || {
    echo "FAIL: dispersal did not win every crash scenario"; cat "$tmp/matrix1.out"; exit 1; }

echo "== 2. same seed twice => byte-identical matrix"
go run ./cmd/enviromic-figures -survivability -quick -seed 42 > "$tmp/matrix2.out"
diff "$tmp/matrix1.out" "$tmp/matrix2.out" > /dev/null || {
    echo "FAIL: two identical matrix runs diverged"; exit 1; }

echo "== 3. dispersal-mode simulation decodes cleanly with invariants on"
go run ./cmd/enviromic-sim -duration 4m -seed 5 \
    -storage-mode disperse -rs 6,4 -invariants > "$tmp/sim.out"
grep -q 'erasure decode       : rs=6,4' "$tmp/sim.out" || {
    echo "FAIL: dispersal run printed no erasure decode summary"; exit 1; }
grep -q 'invariants: OK ([1-9][0-9]* events checked)' "$tmp/sim.out" || {
    echo "FAIL: dispersal run broke invariants"; cat "$tmp/sim.out"; exit 1; }

echo "== 4. malformed -rs fails cleanly"
if go run ./cmd/enviromic-sim -duration 1m -storage-mode disperse -rs 2,4 \
    > /dev/null 2> "$tmp/bad.err"; then
    echo "FAIL: rs=2,4 (n < k) was accepted"; exit 1
fi
grep -qi 'rs\|erasure' "$tmp/bad.err" || {
    echo "FAIL: malformed -rs produced no diagnostic"; exit 1; }

echo "survivability: OK"
