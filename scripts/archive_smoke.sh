#!/bin/sh
# End-to-end smoke test for the basestation archive:
#   1. run a fixed-seed retrieval experiment with -archive to flush the
#      mule holdings into a fresh archive directory,
#   2. re-run the identical command against the same archive and require
#      the second ingest to be a pure no-op (every chunk a duplicate),
#   3. list the archive with enviromic-archive -ls,
#   4. serve the archive over HTTP and exercise /files, /query,
#      /files/{id}/gaps, /files/{id}/wav (must be a non-trivial RIFF
#      payload), and /stats with curl,
#   5. tear the tail off one segment file and reopen: recovery must
#      drop the torn bytes and keep serving the surviving chunks.
# Exits non-zero on the first failure. Usage: scripts/archive_smoke.sh
set -e
cd "$(dirname "$0")/.."

tmp="${TMPDIR:-/tmp}/enviromic-archive-smoke.$$"
mkdir -p "$tmp"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2> /dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Build real binaries so the HTTP server is a direct child we can kill
# (go run would leave an orphaned grandchild behind).
go build -o "$tmp/retrieve" ./cmd/enviromic-retrieve
go build -o "$tmp/archive" ./cmd/enviromic-archive

echo "== 1. fixed-seed retrieval flushed into a fresh archive"
"$tmp/retrieve" -duration 2m -seed 7 -archive "$tmp/store" > "$tmp/run1.out"
grep -q '\[4\] archive flush' "$tmp/run1.out" || {
    echo "FAIL: archive flush section missing"; exit 1; }
grep -Eq 'tour 1 \(one-hop mule\) -> .*: [1-9][0-9]* added' "$tmp/run1.out" || {
    echo "FAIL: first tour archived no chunks"; exit 1; }
grep -Eq 'archive now: [1-9][0-9]* files, [1-9][0-9]* chunks' "$tmp/run1.out" || {
    echo "FAIL: archive summary missing"; exit 1; }

echo "== 2. same seed again => every chunk deduplicated"
"$tmp/retrieve" -duration 2m -seed 7 -archive "$tmp/store" > "$tmp/run2.out"
if grep -E 'tour [0-9]+ .*: [1-9][0-9]* added' "$tmp/run2.out"; then
    echo "FAIL: re-ingest of an identical tour added chunks"; exit 1
fi
chunks1=$(sed -n 's/.*archive now: [0-9]* files, \([0-9]*\) chunks.*/\1/p' "$tmp/run1.out")
chunks2=$(sed -n 's/.*archive now: [0-9]* files, \([0-9]*\) chunks.*/\1/p' "$tmp/run2.out")
[ -n "$chunks1" ] && [ "$chunks1" = "$chunks2" ] || {
    echo "FAIL: chunk count changed across no-op re-ingest ($chunks1 vs $chunks2)"; exit 1; }

echo "== 3. offline listing"
"$tmp/archive" -dir "$tmp/store" -ls > "$tmp/ls.out"
grep -Eq 'archive .*: [1-9][0-9]* files' "$tmp/ls.out" || {
    echo "FAIL: -ls printed no summary"; exit 1; }

echo "== 4. HTTP query service"
"$tmp/archive" -dir "$tmp/store" -http 127.0.0.1:0 > "$tmp/server.out" 2>&1 &
server_pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's|serving on \(http://[0-9.:]*\) .*|\1|p' "$tmp/server.out")
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2> /dev/null || {
        echo "FAIL: server exited early"; cat "$tmp/server.out"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "FAIL: server never announced its address"; exit 1; }

curl -fsS "$base/files" > "$tmp/files.json"
grep -q '"id"' "$tmp/files.json" || {
    echo "FAIL: /files listed nothing"; exit 1; }
fid=$(sed -n 's/.*"id": \([0-9]*\).*/\1/p' "$tmp/files.json" | head -1)

curl -fsS "$base/query?from=0s&to=10m" > "$tmp/query.json"
grep -q '"id"' "$tmp/query.json" || {
    echo "FAIL: interval query over the whole run matched nothing"; exit 1; }

curl -fsS "$base/files/$fid/gaps" > "$tmp/gaps.json"
grep -q '"tolerance_s"' "$tmp/gaps.json" || {
    echo "FAIL: /gaps response malformed"; exit 1; }

curl -fsS "$base/files/$fid/wav" > "$tmp/out.wav"
wavbytes=$(wc -c < "$tmp/out.wav")
[ "$wavbytes" -gt 44 ] || {
    echo "FAIL: WAV export is header-only ($wavbytes bytes)"; exit 1; }
head -c 4 "$tmp/out.wav" | grep -q RIFF || {
    echo "FAIL: WAV export is not a RIFF file"; exit 1; }

curl -fsS "$base/stats" > "$tmp/stats.json"
grep -q '"chunks"' "$tmp/stats.json" || {
    echo "FAIL: /stats malformed"; exit 1; }

kill "$server_pid" && wait "$server_pid" 2> /dev/null || true
server_pid=""

echo "== 5. torn-tail recovery"
seg=$(ls -S "$tmp/store"/shard-*.seg | head -1)
truncate -s -5 "$seg"
"$tmp/archive" -dir "$tmp/store" -ls > "$tmp/recovered.out"
grep -q 'recovered: dropped [1-9][0-9]* torn bytes' "$tmp/recovered.out" || {
    echo "FAIL: torn tail not reported as recovered"; exit 1; }
grep -Eq 'archive .*: [1-9][0-9]* files' "$tmp/recovered.out" || {
    echo "FAIL: archive unreadable after recovery"; exit 1; }

echo "archive smoke: OK"
