module enviromic

go 1.22
