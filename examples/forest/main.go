// Forest: a replica of the paper's §IV-C outdoor deployment — 36 motes on
// trees over ~105×105 ft, a road to the west, a trail through the
// interior, and two bursts of human activity. Runs the full system with
// FTSP time sync on drifting clocks, then reproduces the §IV-C analyses:
// data volume over time, the spatial hot-spots, and how the hottest
// node's recordings migrated.
package main

import (
	"fmt"
	"sort"
	"time"

	"enviromic"
)

func main() {
	const seed = 2006
	duration := time.Hour // the paper ran 3h; one hour shows the same dynamics

	field := enviromic.NewField(1.0)
	field.DetectProb = 0.8
	fcfg := enviromic.DefaultForest()
	fcfg.Duration = duration
	fcfg.Spike1Start, fcfg.Spike1End = 15*time.Minute, 20*time.Minute
	fcfg.Spike2Start, fcfg.Spike2End = 35*time.Minute, 45*time.Minute
	sources := enviromic.GenerateForestSoundscape(field, fcfg)

	positions := enviromic.ForestPositions(seed)
	net := enviromic.NewNetwork(enviromic.Config{
		Seed:             seed,
		Mode:             enviromic.ModeFull,
		BetaMax:          2,
		CommRange:        30,
		LossProb:         0.10,
		FlashBlocks:      1024,
		TimeSync:         true,
		MaxClockDriftPPM: 50,
	}, field, positions)

	fmt.Printf("forest deployment: %d motes, %d sound sources, %v\n",
		len(net.Nodes), sources, duration)
	net.Run(enviromic.At(duration))

	// Fig 16 analogue: recorded seconds per 5 minutes.
	per := net.Collector.RecordedSecondsPerBucket(enviromic.At(duration), 5*time.Minute)
	fmt.Println("\nrecorded audio per 5-minute interval:")
	for i, v := range per {
		bar := ""
		for j := 0; j < int(v/10); j++ {
			bar += "#"
		}
		fmt.Printf("  %3dm %6.1fs %s\n", i*5, v, bar)
	}

	// Fig 17 analogue: where was sound recorded?
	fmt.Println("\ntop recording locations (road + trail hot-spots):")
	byNode := net.Collector.RecordedBytesByNode(enviromic.DefaultSampleRate)
	type nv struct {
		id int
		b  float64
	}
	var ranked []nv
	for id, b := range byNode {
		ranked = append(ranked, nv{id, b})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].b > ranked[j].b })
	for i, r := range ranked {
		if i >= 6 {
			break
		}
		fmt.Printf("  node %2d at %-18v %8.0f bytes\n", r.id, positions[r.id], r.b)
	}

	// Fig 18 analogue: the hottest node's data spread across the network.
	if len(ranked) > 0 {
		hot := ranked[0].id
		fmt.Printf("\nchunks recorded by hottest node %d now resident on:\n", hot)
		holders := 0
		for holder, chunks := range net.Holdings() {
			n := 0
			for _, c := range chunks {
				if int(c.Origin) == hot {
					n++
				}
			}
			if n > 0 && holder != hot {
				fmt.Printf("  node %2d at %-18v %4d chunks\n", holder, positions[holder], n)
				holders++
			}
		}
		fmt.Printf("  (%d nodes hold migrated data from node %d)\n", holders, hot)
	}

	// Clock discipline: how far apart are the FTSP-disciplined clocks?
	fmt.Println("\ntime sync state:")
	root := net.Nodes[0].Clock
	worst := time.Duration(0)
	for _, node := range net.Nodes {
		err := node.Sync.ErrorVsRoot(root)
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	fmt.Printf("  worst estimate error vs root clock: %v across %d nodes\n",
		worst, len(net.Nodes))

	fmt.Printf("\nmiss ratio: %.3f    stored: %d bytes across the network\n",
		net.Collector.MissRatioAt(enviromic.At(duration)), net.TotalStoredBytes())
}
