// Birdsong: the avian-ecology deployment the paper plans in §IV-D —
// when and where do birds vocalize? A 24-mote grid records a synthetic
// dawn chorus (vocalization rate peaking at dawn) plus sporadic nocturnal
// song, then reports vocalizations per half hour and per territory, the
// questions the ecologists wanted answered.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"enviromic"
)

func main() {
	const (
		seed  = 2026
		hours = 6 // 03:00 .. 09:00, dawn at 06:00
	)
	field := enviromic.NewField(1.0)
	grid := enviromic.Grid{Cols: 6, Rows: 4, Pitch: 2}
	loud := enviromic.LoudnessForRange(1.5*grid.Pitch, 1.0)

	// Synthetic chorus: per-half-hour vocalization rate rises toward dawn
	// (hour 3 of the run) — the "dawn chorus" — with occasional nocturnal
	// song before it.
	rng := rand.New(rand.NewSource(seed))
	territories := []enviromic.Point{
		grid.PointAt(1, 1), grid.PointAt(4, 2), grid.PointAt(2, 3), grid.PointAt(5, 0),
	}
	var id enviromic.SourceID
	events := 0
	for t := time.Duration(0); t < hours*time.Hour; {
		hour := t.Hours()
		// Rate: 4/hour at night, peaking ~40/hour at dawn (hour 3).
		rate := 4 + 36*math.Exp(-((hour-3)*(hour-3))/0.5)
		gap := time.Duration(rng.ExpFloat64() * float64(time.Hour) / rate)
		t += gap
		if t >= hours*time.Hour {
			break
		}
		id++
		territory := territories[rng.Intn(len(territories))]
		dur := 2*time.Second + time.Duration(rng.Int63n(int64(6*time.Second)))
		enviromic.AddStaticSource(field, id, territory, enviromic.At(t), dur, loud, enviromic.VoiceTone)
		events++
	}
	fmt.Printf("soundscape: %d vocalizations over %dh across %d territories\n",
		events, hours, len(territories))

	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:      seed,
		Mode:      enviromic.ModeFull,
		BetaMax:   2,
		CommRange: 6 * grid.Pitch,
		LossProb:  0.05,
		// Small flash so the dawn burst exercises storage balancing.
		FlashBlocks: 2048,
	}, field, grid)
	net.Run(enviromic.At(hours * time.Hour))

	// Retrieval and analysis: one file per (detected) vocalization.
	files := enviromic.Collect(net, enviromic.Query{All: true})
	fmt.Printf("retrieved %v\n", enviromic.SummarizeFiles(files, time.Second))

	// Basestation post-processing: segment one territory's stitched audio
	// into individual vocalizations (the paper's intended back-end
	// analysis). Placeholder payloads still segment: chunk boundaries
	// carry energy structure.
	var biggest *enviromic.File
	for _, f := range files {
		if biggest == nil || f.Bytes() > biggest.Bytes() {
			biggest = f
		}
	}
	if biggest != nil {
		samples := enviromic.Stitch(biggest, enviromic.DefaultSampleRate)
		segs := enviromic.DetectSegments(samples, enviromic.SegmentConfig{})
		fmt.Printf("largest file: %.1fs, %d sound segments detected offline\n",
			biggest.Duration().Seconds(), len(segs))
	}

	// Vocalizations per half hour — the dawn chorus curve.
	buckets := make([]int, hours*2)
	for _, f := range files {
		idx := int(f.Start().Duration() / (30 * time.Minute))
		if idx >= 0 && idx < len(buckets) {
			buckets[idx]++
		}
	}
	fmt.Println("\nvocalization files per half-hour (03:00 + n*30min):")
	for i, n := range buckets {
		clock := 3*time.Hour + time.Duration(i)*30*time.Minute
		bar := ""
		for j := 0; j < n; j++ {
			bar += "#"
		}
		fmt.Printf("  %5s %3d %s\n", fmtClock(clock), n, bar)
	}

	// Territory activity: which recorder locations captured the most.
	fmt.Println("\nrecorded seconds by mote (territory proxy):")
	byNode := map[int]float64{}
	for _, r := range net.Collector.Recordings {
		byNode[r.Node] += r.End.Sub(r.Start).Seconds()
	}
	for row := grid.Rows - 1; row >= 0; row-- {
		for col := 0; col < grid.Cols; col++ {
			fmt.Printf("%7.1f", byNode[grid.Index(col, row)])
		}
		fmt.Println()
	}
	fmt.Printf("\nmiss ratio over the whole study: %.3f\n",
		net.Collector.MissRatioAt(enviromic.At(hours*time.Hour)))
}

func fmtClock(d time.Duration) string {
	return fmt.Sprintf("%02d:%02d", int(d.Hours()), int(d.Minutes())%60)
}
