// Quickstart: deploy a small EnviroMic grid, play one acoustic event,
// watch the group elect a leader and rotate recording tasks, then
// retrieve and summarize the distributed file.
package main

import (
	"fmt"
	"time"

	"enviromic"
)

func main() {
	// The acoustic environment: detection threshold 1.0 and a single
	// 10-second tone at the middle of the grid, audible ~2 grid lengths.
	field := enviromic.NewField(1.0)
	grid := enviromic.Grid{Cols: 4, Rows: 3, Pitch: 2}
	loud := enviromic.LoudnessForRange(2*grid.Pitch, 1.0)
	enviromic.AddStaticSource(field, 1, grid.PointAt(1, 1),
		enviromic.At(5*time.Second), 10*time.Second, loud, enviromic.VoiceTone)

	// A full EnviroMic network: cooperative recording + storage balancing.
	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:      1,
		Mode:      enviromic.ModeFull,
		CommRange: 5 * grid.Pitch,
		BetaMax:   2,
	}, field, grid)

	// Run for one virtual minute.
	net.Run(enviromic.At(time.Minute))

	// Every completed recording task, as the metrics collector saw it.
	fmt.Println("recording tasks:")
	for _, r := range net.Collector.Recordings {
		fmt.Printf("  node %2d recorded %5.2fs..%5.2fs (file %d)\n",
			r.Node, r.Start.Seconds(), r.End.Seconds(), r.File)
	}
	fmt.Printf("miss ratio: %.3f\n", net.Collector.MissRatioAt(enviromic.At(time.Minute)))

	// Retrieve: the researcher "physically collects the motes".
	files := enviromic.Collect(net, enviromic.Query{All: true})
	fmt.Printf("retrieved: %v\n", enviromic.SummarizeFiles(files, 500*time.Millisecond))
	for id, f := range files {
		fmt.Printf("  file %d: %.1fs of audio from recorders %v across %d chunks\n",
			id, f.Duration().Seconds(), f.Origins(), len(f.Chunks))
	}
}
