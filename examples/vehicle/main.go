// Vehicle surveillance: the paper's motivating military scenario — a
// target vehicle crosses the monitored field; the group follows it with
// leader handoffs, recording one continuous file as it moves. The example
// verifies file continuity across handoffs and exports the stitched
// engine audio as a WAV.
package main

import (
	"fmt"
	"os"
	"time"

	"enviromic"
)

func main() {
	field := enviromic.NewField(1.0)
	grid := enviromic.IndoorGrid() // 8×6, 2 ft pitch

	// A vehicle rumbles across the middle row at one grid length per
	// second, audible about one grid length away, then a second pass in
	// the opposite direction two minutes later.
	loud := enviromic.LoudnessForRange(1.2*grid.Pitch, 1.0)
	v1 := enviromic.AddMobileSource(field, 1,
		grid.PointAt(0, 3), grid.PointAt(7, 3),
		enviromic.At(5*time.Second), 14*time.Second, loud, enviromic.VoiceRumble)
	v2 := enviromic.AddMobileSource(field, 2,
		grid.PointAt(7, 2), grid.PointAt(0, 2),
		enviromic.At(2*time.Minute), 14*time.Second, loud, enviromic.VoiceRumble)

	net := enviromic.NewGridNetwork(enviromic.Config{
		Seed:            7,
		Mode:            enviromic.ModeCooperative,
		CommRange:       3.5 * grid.Pitch,
		LossProb:        0.05,
		SynthesizeAudio: true, // we want to listen to the result
	}, field, grid)
	net.Run(enviromic.At(3 * time.Minute))

	files := enviromic.Collect(net, enviromic.Query{All: true})
	fmt.Printf("passes: %d    files retrieved: %d\n", 2, len(files))
	for id, f := range files {
		fmt.Printf("  file %d: %5.1fs..%5.1fs  recorders %v  gaps %d\n",
			id, f.Start().Seconds(), f.End().Seconds(), f.Origins(),
			len(f.Gaps(500*time.Millisecond)))
	}

	// Track reconstruction: order of recorders approximates the vehicle's
	// trajectory (each recorder is the node nearest the vehicle during
	// its task).
	fmt.Println("\ntrack from recorder sequence (pass 1):")
	for _, r := range net.Collector.Recordings {
		if r.Start >= v1.Start && r.Start < v1.End {
			col, row := grid.Cell(r.Node)
			fmt.Printf("  t=%5.1fs  node %2d at column %d, row %d\n",
				r.Start.Seconds(), r.Node, col, row)
		}
	}

	missAt := func(end enviromic.Time) float64 { return net.Collector.MissRatioAt(end) }
	fmt.Printf("\ncoverage: miss ratio %.3f (both passes, incl. election startup)\n",
		missAt(enviromic.At(3*time.Minute)))
	_ = v2

	// Export the first pass's stitched audio.
	var best *enviromic.File
	for _, f := range files {
		if f.Start() < enviromic.At(time.Minute) && (best == nil || f.Bytes() > best.Bytes()) {
			best = f
		}
	}
	if best != nil {
		samples := enviromic.Stitch(best, enviromic.DefaultSampleRate)
		out, err := os.Create("vehicle.wav")
		if err == nil {
			defer out.Close()
			if err := enviromic.WriteWAV(out, samples, int(enviromic.DefaultSampleRate)); err == nil {
				fmt.Printf("wrote vehicle.wav (%.1fs)\n", float64(len(samples))/enviromic.DefaultSampleRate)
			}
		}
	}
}
